package qa

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/plan"
)

// corpusSize is the number of seeded instances each corpus test runs.
// Seeds are 1..corpusSize, so any failure is reproducible with
//
//	go test ./internal/qa -run 'TestDifferentialCorpus/seed=N'
const corpusSize = 500

// regressionSeeds pins instances that exposed real issues, so they stay
// in the corpus permanently even if corpusSize changes:
//
//	132 — GenCompact duplicated a single a1 atom into the grammar's
//	      two-element value-list form (a1=z | a1=z), unlocking a form
//	      that exports the requested a3; GenModular's AllRules closure
//	      was CT-cap-truncated before reaching the same Copy-rule CT and
//	      reported infeasible. Drove the truncation-aware inconclusive
//	      classification in Differential. Shrinking this instance also
//	      exposed the stale rulesByLHS index crash in the Earley
//	      recognizer (now rebuilt defensively; see internal/ssdl).
var regressionSeeds = []int64{132}

// corpusSeeds returns every stride-th seed of the sequential corpus plus
// all pinned regression seeds. The tentpole differential check runs the
// full corpus (stride 1); the metamorphic and fault-tolerance checks
// re-plan each instance several times over, so they stride through the
// same seed space to keep the package's tier-1 wall time bounded — the
// fuzz targets cover the gaps continuously.
func corpusSeeds(stride int) []int64 {
	if testing.Short() {
		stride *= 5
	}
	seeds := make([]int64, 0, corpusSize/stride+len(regressionSeeds))
	seen := make(map[int64]bool, corpusSize/stride)
	for s := int64(1); s <= corpusSize; s += int64(stride) {
		seeds = append(seeds, s)
		seen[s] = true
	}
	for _, s := range regressionSeeds {
		if !seen[s] {
			seeds = append(seeds, s)
		}
	}
	return seeds
}

// checkFn is one of the harness's three per-instance checks.
type checkFn func(context.Context, *Instance) (*Report, error)

// runCorpus fans a check over the corpus as parallel subtests named
// seed=N, shrinking any failure to a minimal printable repro.
func runCorpus(t *testing.T, check checkFn, stride int) {
	t.Helper()
	for _, seed := range corpusSeeds(stride) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runCheck(t, check, Generate(seed))
		})
	}
}

func runCheck(t *testing.T, check checkFn, inst *Instance) {
	t.Helper()
	ctx := context.Background()
	rep, err := check(ctx, inst)
	if err != nil {
		t.Fatalf("harness error: %v\n%s", err, inst.Repro())
	}
	if !rep.Failed() {
		if len(rep.Inconclusive) > 0 {
			t.Skipf("%s", rep)
		}
		return
	}
	// Shrink before reporting. The property treats infrastructure errors
	// as non-reproducing so the minimizer cannot wander onto a different
	// bug class.
	small := Shrink(inst, func(cand *Instance) bool {
		r, err := check(ctx, cand)
		return err == nil && r.Failed()
	})
	t.Errorf("%s\n\nminimized repro:\n%s", rep, small.Repro())
}

// TestDifferentialCorpus is the tentpole assertion: over the whole seeded
// corpus, GenModular and GenCompact agree on supportability, both
// executed answers equal the ground-truth oracle, and GenCompact's plan
// is minimum-cost.
func TestDifferentialCorpus(t *testing.T) {
	runCorpus(t, Differential, 1)
}

// TestMetamorphicCorpus checks the semantics-preserving transformations:
// commuted/reassociated/distributed conditions, the plan cache, parallel
// execution and the source-answer cache all leave answers unchanged.
func TestMetamorphicCorpus(t *testing.T) {
	runCorpus(t, Metamorphic, 3)
}

// TestTemplateCorpus checks the parameterized-plan-template invariants:
// binding constants into a cached plan template must be indistinguishable
// from fresh planning — same supportability, byte-identical answers — on
// the generator's placeholder grammars and on derived value-constrained
// (enum and mixed enum+placeholder) grammar variants that force the
// fallback paths.
func TestTemplateCorpus(t *testing.T) {
	runCorpus(t, Template, 3)
}

// TestFaultToleranceCorpus checks the fault-injection invariants:
// transient faults behind retries still produce the oracle answer, and
// persistent faults produce the oracle answer, a sound partial answer
// with a well-formed *plan.PartialError, or a fail-closed error.
func TestFaultToleranceCorpus(t *testing.T) {
	runCorpus(t, FaultTolerance, 4)
}

// TestStreamingCorpus checks the streaming-execution invariants: the
// iterator engine matches the materialized executor and the oracle under
// every execution shape (zero answer divergence), and faults injected
// mid-stream — after rows have already been emitted — degrade to a sound
// partial answer or fail closed, never to a wrong answer.
func TestStreamingCorpus(t *testing.T) {
	runCorpus(t, Streaming, 2)
}

// TestBoundedCorpus checks the bounded-interface invariants: a result
// bound the answer fits inside is provably complete (oracle equality, no
// error); a tighter bound degrades to a sound partial tagged "truncated"
// or fails closed, never a short answer labeled complete; a required
// binding the condition cannot satisfy is infeasible; pagination — with
// and without mid-cursor faults — never changes answers beyond sound,
// tagged degradation.
func TestBoundedCorpus(t *testing.T) {
	runCorpus(t, Bounded, 3)
}

// TestExecProfileConsistency checks the execution-profile invariants:
// profiled runs still match the oracle, the root operator's rows-out
// equals the answer cardinality, and every operator's rows-in equals the
// sum of its children's rows-out — across both engines, every execution
// shape, and template-cache hits and misses.
func TestExecProfileConsistency(t *testing.T) {
	runCorpus(t, ProfileConsistency, 3)
}

// TestGeneratorDeterminism guards the repro contract: the same seed must
// regenerate a byte-identical instance, or "seed N" stops being a
// reproduction.
func TestGeneratorDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 17, 99, 12345} {
		a, b := Generate(seed), Generate(seed)
		if a.Repro() != b.Repro() {
			t.Errorf("seed %d generated two different instances:\n--- first\n%s--- second\n%s", seed, a.Repro(), b.Repro())
		}
		if a.Cond.Key() != b.Cond.Key() {
			t.Errorf("seed %d generated two different conditions: %q vs %q", seed, a.Cond.Key(), b.Cond.Key())
		}
	}
}

// TestPlannerDeterminism guards plan-level reproducibility: planning the
// same instance twice (fresh mediators, fresh planners) must produce the
// same plan text and the same cost, for both schemes. This is what makes
// a corpus failure replayable at the plan level, not only at the answer
// level.
func TestPlannerDeterminism(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			var prevM, prevC string
			for trial := 0; trial < 2; trial++ {
				inst := Generate(seed)
				med, err := inst.NewMediator(nil)
				if err != nil {
					t.Fatalf("mediator: %v", err)
				}
				pm, _, errM := med.Plan(ctx, Modular(), inst.Source(), inst.Cond, inst.Attrs)
				pc, _, errC := med.Plan(ctx, Compact(), inst.Source(), inst.Cond, inst.Attrs)
				var textM, textC string
				if errM == nil {
					textM = plan.Format(pm)
				} else {
					textM = "err: " + errM.Error()
				}
				if errC == nil {
					textC = plan.Format(pc)
				} else {
					textC = "err: " + errC.Error()
				}
				if trial == 0 {
					prevM, prevC = textM, textC
					continue
				}
				if textM != prevM {
					t.Errorf("GenModular plan not deterministic:\n--- first\n%s--- second\n%s", prevM, textM)
				}
				if textC != prevC {
					t.Errorf("GenCompact plan not deterministic:\n--- first\n%s--- second\n%s", prevC, textC)
				}
			}
		})
	}
}

// TestShrinkPreservesFailure exercises the minimizer on a synthetic
// "failure": a property that keys on one atom of the condition and one
// row of the relation. Shrink must preserve the property while actually
// reducing the instance.
func TestShrinkPreservesFailure(t *testing.T) {
	inst := Generate(11)
	if inst.Rel.Len() < 2 {
		t.Fatalf("seed 11 generated a degenerate relation (%d rows)", inst.Rel.Len())
	}
	keyTuple := inst.Rel.Tuples()[0].Key()
	prop := func(cand *Instance) bool {
		for _, tup := range cand.Rel.Tuples() {
			if tup.Key() == keyTuple {
				return true
			}
		}
		return false
	}
	if !prop(inst) {
		t.Fatal("property does not hold on the original instance")
	}
	small := Shrink(inst, prop)
	if !prop(small) {
		t.Fatalf("shrunk instance lost the property:\n%s", small.Repro())
	}
	if small.size() >= inst.size() {
		t.Errorf("shrink did not reduce the instance: %d -> %d", inst.size(), small.size())
	}
	if small.Rel.Len() != 1 {
		t.Errorf("shrink kept %d rows, want exactly the 1 the property needs:\n%s", small.Rel.Len(), small.Repro())
	}
	if !small.Shrunk {
		t.Error("shrunk instance not marked Shrunk")
	}
}
