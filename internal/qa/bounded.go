package qa

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/condition"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/source"
	"repro/internal/ssdl"
)

// Bounded checks the result-bound, binding-pattern and pagination
// invariants on one instance by deriving annotated variants of its
// grammar and re-running the full plan/execute pipeline on each:
//
//	(1) provably complete: a result bound the whole relation fits inside
//	    can never truncate, so every executed answer must equal the
//	    full-relation oracle with NO error — the bounded interface is
//	    indistinguishable from an unbounded one;
//	(2) sound partial: a bound of 1 row may cut source answers short.
//	    With partials allowed the answer must be a subset of the oracle
//	    annotated with a *plan.PartialError whose reasons include
//	    "truncated"; with partials rejected the execution must either
//	    equal the oracle exactly or fail closed — a short answer
//	    presented as complete is the one forbidden outcome;
//	(3) binding patterns: requiring an attribute the target condition
//	    never binds with an equality makes every source query
//	    unsupported, so planning must report ErrInfeasible; requiring an
//	    attribute the condition does bind keeps any feasible plan's
//	    answer equal to the oracle;
//	(4) pagination: a paged source driven through source.Paged must be
//	    answer-invariant — cursor-loop fetch is an implementation detail,
//	    not a semantics change;
//	(5) mid-cursor faults: a transient page failure is retried and the
//	    scan recovers the exact oracle answer; a persistent one degrades
//	    to a sound partial answer tagged "truncated" or fails closed,
//	    never to a short answer labeled complete.
//
// Like Differential, infrastructure errors come back as error and
// assertion violations land in Report.Failures.
func Bounded(ctx context.Context, inst *Instance) (*Report, error) {
	rep := &Report{Instance: inst}

	oracle, err := inst.Oracle()
	if err != nil {
		return nil, err
	}
	rep.OracleRows = oracle.Len()

	// The variants reuse the base instance's plan feasibility: bounds and
	// page sizes never change Supports, so planning once against the
	// unannotated grammar tells us whether there is anything to execute.
	med, err := inst.NewMediator(nil)
	if err != nil {
		return nil, err
	}
	p, _, errP := med.Plan(ctx, Compact(), inst.Source(), inst.Cond, inst.Attrs)
	feasible, uerr := classify(errP)
	if uerr != nil {
		rep.failf("GenCompact failed unexpectedly: %v", uerr)
		return rep, nil
	}
	rep.CompactFeasible = feasible

	if feasible {
		checkBoundCovers(ctx, rep, inst, p, oracle)
		checkBoundTruncates(ctx, rep, inst, p, oracle)
		checkPaged(ctx, rep, inst, p, oracle)
		checkPagedFaults(ctx, rep, inst, p, oracle)
	}
	if err := checkRequiredBinding(ctx, rep, inst, oracle); err != nil {
		return nil, err
	}
	return rep, nil
}

// withGrammar derives a variant instance whose grammar is a mutated
// clone; everything else (relation, condition, oracle) is shared.
func withGrammar(inst *Instance, mutate func(*ssdl.Grammar)) *Instance {
	v := *inst
	v.Grammar = inst.Grammar.Clone()
	mutate(v.Grammar)
	return &v
}

// checkBoundCovers asserts invariant (1): limit > |R| provably covers
// every source answer, so both engines must produce the oracle answer
// with no error at all.
func checkBoundCovers(ctx context.Context, rep *Report, inst *Instance, p plan.Plan, oracle *relation.Relation) {
	v := withGrammar(inst, func(g *ssdl.Grammar) { g.Limit = inst.Rel.Len() + 1 })
	med, err := v.NewMediator(nil)
	if err != nil {
		rep.failf("bound-covers: building mediator: %v", err)
		return
	}
	ans, err := plan.Execute(ctx, p, med)
	if err != nil {
		rep.failf("bound-covers (limit %d > %d rows): execution reported an error for a provably complete answer: %v",
			v.Grammar.Limit, inst.Rel.Len(), err)
		return
	}
	if !ans.Equal(oracle) {
		rep.failf("bound-covers (limit %d): answer diverges from oracle: got %d rows, oracle %d rows\nplan:\n%s",
			v.Grammar.Limit, ans.Len(), oracle.Len(), plan.Format(p))
	}
	model := v.Model()
	resolver := func(c *plan.Choice) (plan.Plan, error) { return model.Resolve(c) }
	sans, serr := plan.ExecuteStream(ctx, p, med, plan.StreamOptions{Workers: 1, ChoiceResolver: resolver})
	if serr != nil {
		rep.failf("bound-covers (limit %d): streaming execution reported an error for a provably complete answer: %v",
			v.Grammar.Limit, serr)
		return
	}
	if !sans.Equal(oracle) {
		rep.failf("bound-covers (limit %d): streaming answer diverges from oracle: got %d rows, oracle %d rows",
			v.Grammar.Limit, sans.Len(), oracle.Len())
	}
}

// checkDegraded asserts the sound-partial contract on one execution
// outcome: no error means the exact oracle answer (never a silently
// short one), a *plan.PartialError means a sound subset tagged
// "truncated", any other error means fail-closed with no relation.
func checkDegraded(rep *Report, label string, ans *relation.Relation, err error, oracle *relation.Relation, wantPartialTag bool) {
	var pe *plan.PartialError
	switch {
	case err == nil:
		if !ans.Equal(oracle) {
			rep.failf("%s: no error reported but answer diverges from oracle: got %d rows, oracle %d rows — a truncated answer was presented as complete",
				label, ans.Len(), oracle.Len())
		}
	case errors.As(err, &pe):
		if ans == nil {
			rep.failf("%s: partial answer has nil relation: %v", label, err)
			return
		}
		if len(pe.Dropped) == 0 {
			rep.failf("%s: PartialError with no dropped branches: %v", label, err)
		}
		if wantPartialTag && !slices.Contains(pe.Reasons(), plan.ReasonTruncated) {
			rep.failf("%s: PartialError reasons %v do not include %q: %v", label, pe.Reasons(), plan.ReasonTruncated, err)
		}
		sub, serr := subsetOf(ans, oracle)
		if serr != nil {
			rep.failf("%s: partial answer not comparable to oracle: %v", label, serr)
		} else if !sub {
			rep.failf("%s: partial answer is NOT a subset of the oracle answer (%d rows vs oracle %d): unsound degradation",
				label, ans.Len(), oracle.Len())
		}
	default:
		if ans != nil {
			rep.failf("%s: fail-closed error carries a non-nil relation (%d rows): %v", label, ans.Len(), err)
		}
	}
}

// checkBoundTruncates asserts invariant (2): a 1-row bound degrades
// soundly in partial mode and never yields a short answer labeled
// complete in fail-closed mode.
func checkBoundTruncates(ctx context.Context, rep *Report, inst *Instance, p plan.Plan, oracle *relation.Relation) {
	v := withGrammar(inst, func(g *ssdl.Grammar) { g.Limit = 1 })
	med, err := v.NewMediator(nil)
	if err != nil {
		rep.failf("tight-bound: building mediator: %v", err)
		return
	}
	model := v.Model()
	resolver := func(c *plan.Choice) (plan.Plan, error) { return model.Resolve(c) }

	ans, err := plan.ExecuteParallel(ctx, p, med, plan.ExecOptions{Workers: 2, AllowPartial: true})
	checkDegraded(rep, "tight-bound (limit 1, partial)", ans, err, oracle, true)

	sans, serr := plan.ExecuteStream(ctx, p, med, plan.StreamOptions{Workers: 1, AllowPartial: true, ChoiceResolver: resolver})
	checkDegraded(rep, "tight-bound (limit 1, streaming partial)", sans, serr, oracle, true)

	cans, cerr := plan.Execute(ctx, p, med)
	switch {
	case cerr == nil:
		if !cans.Equal(oracle) {
			rep.failf("tight-bound (limit 1, fail-closed): answer diverges from oracle with no error: got %d rows, oracle %d rows — a truncated answer was presented as complete",
				cans.Len(), oracle.Len())
		}
	case errors.As(cerr, new(*plan.PartialError)):
		rep.failf("tight-bound (limit 1, fail-closed): a *plan.PartialError leaked without AllowPartial: %v", cerr)
	default:
		if cans != nil {
			rep.failf("tight-bound (limit 1, fail-closed): error carries a non-nil relation (%d rows): %v", cans.Len(), cerr)
		}
	}
}

// eqAttrs collects the attributes the condition binds with an equality
// atom anywhere in its tree.
func eqAttrs(n condition.Node, out map[string]bool) {
	switch t := n.(type) {
	case *condition.Atomic:
		if t.Op == condition.OpEq {
			out[t.Attr] = true
		}
	case *condition.And:
		for _, k := range t.Kids {
			eqAttrs(k, out)
		}
	case *condition.Or:
		for _, k := range t.Kids {
			eqAttrs(k, out)
		}
	}
}

// checkRequiredBinding asserts invariant (3) for both directions of the
// binding-pattern gate.
func checkRequiredBinding(ctx context.Context, rep *Report, inst *Instance, oracle *relation.Relation) error {
	bound := make(map[string]bool)
	eqAttrs(inst.Cond, bound)

	// Unsatisfiable: an attribute the condition never equality-binds can
	// never be supplied, so the query must be infeasible — no rewrite can
	// invent an equality atom on an attribute the condition does not
	// constrain.
	var unbound string
	for _, a := range inst.Grammar.Schema {
		if !bound[a] {
			unbound = a
			break
		}
	}
	if unbound != "" {
		v := withGrammar(inst, func(g *ssdl.Grammar) { g.Required = []string{unbound} })
		med, err := v.NewMediator(nil)
		if err != nil {
			return err
		}
		_, _, errP := med.Plan(ctx, Compact(), inst.Source(), inst.Cond, inst.Attrs)
		feasible, uerr := classify(errP)
		if uerr != nil {
			rep.failf("required-unbound (%s): planner failed unexpectedly: %v", unbound, uerr)
		} else if feasible {
			rep.failf("required-unbound: planner found a plan although required attribute %q is never equality-bound by the condition %s",
				unbound, inst.Cond.Key())
		}
	}

	// Satisfiable: requiring an attribute the condition does bind may or
	// may not stay feasible (the grammar's forms decide), but any plan
	// that exists must still compute the oracle answer.
	for _, a := range inst.Grammar.Schema {
		if !bound[a] {
			continue
		}
		v := withGrammar(inst, func(g *ssdl.Grammar) { g.Required = []string{a} })
		med, err := v.NewMediator(nil)
		if err != nil {
			return err
		}
		p, _, errP := med.Plan(ctx, Compact(), inst.Source(), inst.Cond, inst.Attrs)
		feasible, uerr := classify(errP)
		if uerr != nil {
			rep.failf("required-bound (%s): planner failed unexpectedly: %v", a, uerr)
			break
		}
		if !feasible {
			break // a legitimate capability "no"; nothing to execute
		}
		ans, err := plan.Execute(ctx, p, med)
		if err != nil {
			rep.failf("required-bound (%s): plan failed to execute: %v\nplan:\n%s", a, err, plan.Format(p))
			break
		}
		if !ans.Equal(oracle) {
			rep.failf("required-bound (%s): answer diverges from oracle: got %d rows, oracle %d rows\nplan:\n%s",
				a, ans.Len(), oracle.Len(), plan.Format(p))
		}
		break
	}
	return nil
}

// pagedSource builds the instance's source as a paginated scan: a Local
// with the page-size annotation, driven through source.Paged.
func pagedSource(inst *Instance, pageSize int, wrap func(*source.Local) source.CursorQuerier, opts source.PagedOptions) (*Instance, *source.Paged, error) {
	v := withGrammar(inst, func(g *ssdl.Grammar) { g.PageSize = pageSize })
	local, err := source.NewLocal(v.Source(), v.Rel, v.Grammar)
	if err != nil {
		return nil, nil, fmt.Errorf("qa: building source: %w", err)
	}
	var cq source.CursorQuerier = local
	if wrap != nil {
		cq = wrap(local)
	}
	if opts.Sleep == nil {
		opts.Sleep = func(ctx context.Context, _ time.Duration) error { return ctx.Err() }
	}
	return v, source.NewPaged(v.Source(), cq, opts), nil
}

// checkPaged asserts invariant (4): pagination is answer-invariant in
// both engines.
func checkPaged(ctx context.Context, rep *Report, inst *Instance, p plan.Plan, oracle *relation.Relation) {
	v, paged, err := pagedSource(inst, 2, nil, source.PagedOptions{})
	if err != nil {
		rep.failf("paged: %v", err)
		return
	}
	med, err := v.NewMediator(paged)
	if err != nil {
		rep.failf("paged: building mediator: %v", err)
		return
	}
	ans, err := plan.Execute(ctx, p, med)
	if err != nil {
		rep.failf("paged (page size 2): execution failed: %v\nplan:\n%s", err, plan.Format(p))
		return
	}
	if !ans.Equal(oracle) {
		rep.failf("paged (page size 2): answer diverges from oracle: got %d rows, oracle %d rows\nplan:\n%s",
			ans.Len(), oracle.Len(), plan.Format(p))
	}
	model := v.Model()
	resolver := func(c *plan.Choice) (plan.Plan, error) { return model.Resolve(c) }
	sans, serr := plan.ExecuteStream(ctx, p, med, plan.StreamOptions{Workers: 1, ChoiceResolver: resolver})
	if serr != nil {
		rep.failf("paged (page size 2): streaming execution failed: %v", serr)
		return
	}
	if !sans.Equal(oracle) {
		rep.failf("paged (page size 2): streaming answer diverges from oracle: got %d rows, oracle %d rows",
			sans.Len(), oracle.Len())
	}
}

// flakyCursor injects page-level faults: fetches of any page past the
// first fail with a retryable transport error until the budget is spent
// (-1 = unlimited). First pages always succeed, so a scan always has
// sound rows in hand when its cursor dies.
type flakyCursor struct {
	inner *source.Local

	mu    sync.Mutex
	fails int
}

func (f *flakyCursor) QueryPage(ctx context.Context, cond condition.Node, attrs []string, cursor string) (*relation.Relation, string, error) {
	if cursor != "" {
		f.mu.Lock()
		inject := f.fails != 0
		if f.fails > 0 {
			f.fails--
		}
		f.mu.Unlock()
		if inject {
			return nil, "", &source.TransportError{Source: f.inner.Name(), Err: source.ErrInjected}
		}
	}
	return f.inner.QueryPage(ctx, cond, attrs, cursor)
}

// checkPagedFaults asserts invariant (5): transient mid-cursor faults
// recover exactly; persistent ones degrade soundly.
func checkPagedFaults(ctx context.Context, rep *Report, inst *Instance, p plan.Plan, oracle *relation.Relation) {
	// Transient: one injected page failure, per-page retry enabled. The
	// retry must recover the page and the answer must be exact — the
	// fault is invisible.
	v, paged, err := pagedSource(inst, 2,
		func(l *source.Local) source.CursorQuerier { return &flakyCursor{inner: l, fails: 1} },
		source.PagedOptions{MaxRetries: 2})
	if err != nil {
		rep.failf("paged-fault: %v", err)
		return
	}
	med, err := v.NewMediator(paged)
	if err != nil {
		rep.failf("paged-fault: building mediator: %v", err)
		return
	}
	ans, err := plan.Execute(ctx, p, med)
	if err != nil {
		rep.failf("paged-fault (transient): execution failed although the page retry should recover: %v\nplan:\n%s",
			err, plan.Format(p))
	} else if !ans.Equal(oracle) {
		rep.failf("paged-fault (transient): answer diverges from oracle after page retry: got %d rows, oracle %d rows",
			ans.Len(), oracle.Len())
	}

	// Persistent: every non-first page fails for good. The scan keeps its
	// first page and must degrade to a sound partial tagged "truncated"
	// (or fail closed / be complete within one page) — never to a short
	// answer presented as complete.
	pv, ppaged, err := pagedSource(inst, 2,
		func(l *source.Local) source.CursorQuerier { return &flakyCursor{inner: l, fails: -1} },
		source.PagedOptions{MaxRetries: 1})
	if err != nil {
		rep.failf("paged-fault: %v", err)
		return
	}
	pmed, err := pv.NewMediator(ppaged)
	if err != nil {
		rep.failf("paged-fault: building mediator: %v", err)
		return
	}
	pans, perr := plan.ExecuteParallel(ctx, p, pmed, plan.ExecOptions{Workers: 2, AllowPartial: true})
	checkDegraded(rep, "paged-fault (persistent, partial)", pans, perr, oracle, true)

	model := pv.Model()
	resolver := func(c *plan.Choice) (plan.Plan, error) { return model.Resolve(c) }
	// A fresh source: the previous execution consumed no fault budget
	// state (fails is unlimited), but streams must not share cursors.
	sans, serr := plan.ExecuteStream(ctx, p, pmed, plan.StreamOptions{Workers: 1, AllowPartial: true, ChoiceResolver: resolver})
	checkDegraded(rep, "paged-fault (persistent, streaming partial)", sans, serr, oracle, true)
}
