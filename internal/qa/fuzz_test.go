package qa

import (
	"context"
	"testing"
)

// fuzzSeedCorpus is the starting corpus for both fuzz targets: a spread
// of small seeds (each profile class and query shape appears) plus the
// pinned regression seeds. The fuzzer mutates the int64 seed; every
// value is a valid instance by construction, so all fuzzing effort goes
// into exploring planner behavior rather than input validation.
var fuzzSeedCorpus = []int64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987}

// FuzzDifferentialPlan fuzzes the tentpole differential assertion:
// generate the instance for a seed, plan it with GenModular and
// GenCompact, execute both, and require supportability agreement, oracle
// equality and GenCompact cost-minimality.
//
// Run locally with
//
//	go test ./internal/qa -fuzz FuzzDifferentialPlan -fuzztime 60s
func FuzzDifferentialPlan(f *testing.F) {
	for _, s := range fuzzSeedCorpus {
		f.Add(s)
	}
	for _, s := range regressionSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		fuzzCheck(t, Differential, seed)
		fuzzCheck(t, Bounded, seed)
	})
}

// FuzzMetamorphic fuzzes the metamorphic and fault-tolerance invariants:
// condition variants, plan cache, parallel execution, source cache and
// injected faults must never change a supportable query's answer beyond
// sound, well-formed degradation.
//
// Run locally with
//
//	go test ./internal/qa -fuzz FuzzMetamorphic -fuzztime 60s
func FuzzMetamorphic(f *testing.F) {
	for _, s := range fuzzSeedCorpus {
		f.Add(s)
	}
	for _, s := range regressionSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		fuzzCheck(t, Metamorphic, seed)
		fuzzCheck(t, FaultTolerance, seed)
		fuzzCheck(t, Bounded, seed)
	})
}

func fuzzCheck(t *testing.T, check checkFn, seed int64) {
	t.Helper()
	ctx := context.Background()
	inst := Generate(seed)
	rep, err := check(ctx, inst)
	if err != nil {
		t.Fatalf("harness error on seed %d: %v\n%s", seed, err, inst.Repro())
	}
	if !rep.Failed() {
		return // inconclusive (budget-truncated) outcomes are not failures
	}
	small := Shrink(inst, func(cand *Instance) bool {
		r, err := check(ctx, cand)
		return err == nil && r.Failed()
	})
	t.Errorf("%s\n\nminimized repro:\n%s", rep, small.Repro())
}
