package qa

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/plan"
	"repro/internal/source"
)

// Streaming checks the streaming-execution invariants on one instance:
//
//	(1) the streaming iterator engine yields the oracle answer under every
//	    execution shape — sequential, parallel (4 workers), and a
//	    degenerate one-tuple chunk size — with zero divergence from the
//	    materialized executor;
//	(2) a fault injected mid-stream (the source dies after yielding some
//	    rows) degrades soundly when partials are allowed: either the
//	    oracle answer (fault never reached), a sound partial answer — a
//	    non-nil subset of the oracle annotated with a well-formed
//	    *plan.PartialError — or a fail-closed error with a nil relation;
//	(3) the same mid-stream fault with partials rejected must never leak
//	    a relation or a *plan.PartialError: oracle answer or fail-closed,
//	    nothing in between.
//
// (2) is stricter than FaultTolerance's whole-call fault class: the
// source fails AFTER rows have already crossed operator boundaries, so
// the check exercises the engine's discard/keep decision for
// already-emitted tuples, not just branch-open failures.
//
// Like Differential, infrastructure errors come back as error and
// assertion violations land in Report.Failures.
func Streaming(ctx context.Context, inst *Instance) (*Report, error) {
	rep := &Report{Instance: inst}

	oracle, err := inst.Oracle()
	if err != nil {
		return nil, err
	}
	rep.OracleRows = oracle.Len()

	med, err := inst.NewMediator(nil)
	if err != nil {
		return nil, err
	}
	p, _, errP := med.Plan(ctx, Compact(), inst.Source(), inst.Cond, inst.Attrs)
	feasible, uerr := classify(errP)
	if uerr != nil {
		rep.failf("GenCompact failed unexpectedly: %v", uerr)
		return rep, nil
	}
	rep.CompactFeasible = feasible
	if !feasible {
		return rep, nil
	}

	model := inst.Model()
	resolver := func(c *plan.Choice) (plan.Plan, error) { return model.Resolve(c) }

	// (1) Streaming-vs-materialized differential: every execution shape
	// must equal the materialized answer, which must equal the oracle.
	base, err := plan.Execute(ctx, p, med)
	if err != nil {
		rep.failf("materialized baseline failed to execute: %v\nplan:\n%s", err, plan.Format(p))
		return rep, nil
	}
	if !base.Equal(oracle) {
		rep.failf("materialized baseline diverges from oracle: got %d rows, oracle %d rows\nplan:\n%s",
			base.Len(), oracle.Len(), plan.Format(p))
		return rep, nil
	}
	for _, shape := range []struct {
		name    string
		workers int
		chunk   int
	}{
		{"sequential", 1, 0},
		{"parallel", 4, 0},
		{"chunk=1", 1, 1},
	} {
		stats := &plan.StreamStats{}
		ans, err := plan.ExecuteStream(ctx, p, med, plan.StreamOptions{
			Workers:        shape.workers,
			ChoiceResolver: resolver,
			ChunkSize:      shape.chunk,
			Stats:          stats,
		})
		if err != nil {
			rep.failf("streaming (%s): execution failed: %v\nplan:\n%s", shape.name, err, plan.Format(p))
			continue
		}
		if !ans.Equal(base) {
			rep.failf("streaming (%s): answer diverges from materialized executor: got %d rows, want %d\nplan:\n%s",
				shape.name, ans.Len(), base.Len(), plan.Format(p))
		}
		if oracle.Len() > 0 && stats.RowsStreamed() < int64(ans.Len()) {
			rep.failf("streaming (%s): stats report %d rows streamed for a %d-row answer: accounting lost rows",
				shape.name, stats.RowsStreamed(), ans.Len())
		}
	}

	// (2) Mid-stream fault, partials allowed. The budget rotates with the
	// seed so the corpus covers faults at row 0, 1 and 2 of each source
	// stream; which outcome class results depends on the plan shape, and
	// all sound classes are accepted.
	failAfter := int(inst.Seed % 3)
	local, err := source.NewLocal(inst.Source(), inst.Rel, inst.Grammar)
	if err != nil {
		return nil, fmt.Errorf("qa: building source: %w", err)
	}
	flaky := source.NewFlaky(local).FailAfterRows(failAfter)
	fmed, err := inst.NewMediator(flaky)
	if err != nil {
		return nil, err
	}
	pans, perr := plan.ExecuteStream(ctx, p, fmed, plan.StreamOptions{
		Workers:        1,
		AllowPartial:   true,
		ChoiceResolver: resolver,
	})
	var pe *plan.PartialError
	switch {
	case perr == nil:
		if !pans.Equal(oracle) {
			rep.failf("mid-stream fault (after %d rows), no error reported: answer diverges from oracle: got %d rows, oracle %d rows\nplan:\n%s",
				failAfter, pans.Len(), oracle.Len(), plan.Format(p))
		}
	case errors.As(perr, &pe):
		if pans == nil {
			rep.failf("mid-stream fault (after %d rows): partial answer has nil relation: %v", failAfter, perr)
			break
		}
		if len(pe.Dropped) == 0 {
			rep.failf("mid-stream fault (after %d rows): PartialError with no dropped branches: %v", failAfter, perr)
		}
		sub, serr := subsetOf(pans, oracle)
		if serr != nil {
			rep.failf("mid-stream fault (after %d rows): partial answer not comparable to oracle: %v", failAfter, serr)
		} else if !sub {
			rep.failf("mid-stream fault (after %d rows): partial answer is NOT a subset of the oracle answer (%d rows vs oracle %d): unsound degradation\nplan:\n%s",
				failAfter, pans.Len(), oracle.Len(), plan.Format(p))
		}
	default:
		if pans != nil {
			rep.failf("mid-stream fault (after %d rows): fail-closed error carries a non-nil relation (%d rows): %v",
				failAfter, pans.Len(), perr)
		}
	}

	// (3) Same fault with partials rejected: rows already emitted by a
	// dying branch must be discarded, never surfaced.
	local2, err := source.NewLocal(inst.Source(), inst.Rel, inst.Grammar)
	if err != nil {
		return nil, fmt.Errorf("qa: building source: %w", err)
	}
	flaky2 := source.NewFlaky(local2).FailAfterRows(failAfter)
	cmed, err := inst.NewMediator(flaky2)
	if err != nil {
		return nil, err
	}
	cans, cerr := plan.ExecuteStream(ctx, p, cmed, plan.StreamOptions{
		Workers:        1,
		ChoiceResolver: resolver,
	})
	switch {
	case cerr == nil:
		if !cans.Equal(oracle) {
			rep.failf("mid-stream fault, fail-closed, no error reported: answer diverges from oracle: got %d rows, oracle %d rows\nplan:\n%s",
				cans.Len(), oracle.Len(), plan.Format(p))
		}
	case errors.As(cerr, new(*plan.PartialError)):
		rep.failf("mid-stream fault, fail-closed: a *plan.PartialError leaked through AllowPartial=false: %v", cerr)
	default:
		if cans != nil {
			rep.failf("mid-stream fault, fail-closed: error carries a non-nil relation (%d rows): %v", cans.Len(), cerr)
		}
	}
	return rep, nil
}
