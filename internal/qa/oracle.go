package qa

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// Oracle computes the instance's ground-truth answer by evaluating the
// original condition directly against the full relation and projecting
// onto the requested attributes — no capability checking, no rewriting,
// no planning, no plan execution. Every correctly planned and executed
// answer must equal it (set semantics).
func (inst *Instance) Oracle() (*relation.Relation, error) {
	sel, err := inst.Rel.Select(inst.Cond)
	if err != nil {
		return nil, fmt.Errorf("qa: oracle select: %w", err)
	}
	attrs := append([]string(nil), inst.Attrs...)
	sort.Strings(attrs)
	out, err := sel.Project(attrs)
	if err != nil {
		return nil, fmt.Errorf("qa: oracle project: %w", err)
	}
	return out, nil
}

// subsetOf reports whether every tuple of a appears in b, aligning a's
// column order to b's when the schemas differ only by order. It is the
// soundness check for partial answers: a degraded Union answer must be a
// subset of the full answer.
func subsetOf(a, b *relation.Relation) (bool, error) {
	if !a.Schema().Equal(b.Schema()) {
		var err error
		a, err = a.Project(b.Schema().Names())
		if err != nil {
			return false, fmt.Errorf("qa: aligning schemas: %w", err)
		}
	}
	in := make(map[string]bool, b.Len())
	for _, t := range b.Tuples() {
		in[t.Key()] = true
	}
	for _, t := range a.Tuples() {
		if !in[t.Key()] {
			return false, nil
		}
	}
	return true, nil
}
