package qa

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/condition"
	"repro/internal/mediator"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/source"
	"repro/internal/ssdl"
)

// Template checks the parameterized-plan-template invariants on one
// instance: planning through the mediator's template tier — warm the
// cache with a same-shape, constant-mutated variant of the condition,
// then plan the original — must be indistinguishable from fresh planning.
// Concretely,
//
//	(1) on the instance's own (placeholder-only) grammar, the original
//	    query must bind from the cached template, preserve
//	    supportability, and execute to an answer byte-identical to what
//	    a cache-less mediator produces;
//	(2) on a value-constrained variant of the grammar — every
//	    placeholder whose position the query's own constants match
//	    replaced by an enumeration of exactly those constants — the
//	    skeleton loses those derivations, so templated planning must
//	    detect the violating binding and fall back, again byte-identical
//	    to fresh planning;
//	(3) on a mixed variant — the enum rules added alongside the original
//	    placeholder rules — the skeleton stays feasible through the
//	    placeholder rules, but bindings colliding with the enum literals
//	    must still force the bind-time fallback.
//
// Like the other checks, infrastructure errors come back as error and
// assertion violations land in Report.Failures.
func Template(ctx context.Context, inst *Instance) (*Report, error) {
	rep := &Report{Instance: inst}

	pz := condition.Parameterize(inst.Cond)
	if len(pz.Bindings) == 0 {
		// No liftable constants: the template tier never engages.
		return rep, nil
	}
	warmCond, err := condition.Bind(pz.Skeleton, mutateBindings(pz.Bindings))
	if err != nil {
		return nil, fmt.Errorf("qa: binding mutated constants: %w", err)
	}

	// (1) Placeholder-only grammar: a template hit is mandatory when the
	// warming query planned.
	hit := true
	if err := checkTemplated(ctx, rep, inst, inst.Grammar, warmCond, "placeholder grammar", &hit); err != nil {
		return nil, err
	}

	// (2) + (3) Value-constrained grammar variants, derived here rather
	// than generated: the generator's grammars are placeholder-only, and
	// scrambling its seed stream would invalidate every pinned repro.
	enum, constrained := enumGrammar(inst, pz, false)
	if enum != nil {
		want := hitDontCare(constrained)
		if err := checkTemplated(ctx, rep, inst, enum, warmCond, "enum grammar", want); err != nil {
			return nil, err
		}
	}
	mixed, constrained := enumGrammar(inst, pz, true)
	if mixed != nil {
		want := hitDontCare(constrained)
		if err := checkTemplated(ctx, rep, inst, mixed, warmCond, "mixed enum+placeholder grammar", want); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// hitDontCare maps "a lifted binding collides with an added enum" to the
// template-hit expectation: a collision guarantees the fallback path
// (either the skeleton went infeasible, or the sensitivity analysis
// rejects the binding), so Metrics.Template must be false; without a
// collision the outcome is grammar-dependent and unasserted.
func hitDontCare(constrained bool) *bool {
	if !constrained {
		return nil
	}
	f := false
	return &f
}

// checkTemplated plans inst.Cond twice over grammar g — once on a fresh
// cache-less mediator, once on a cached mediator warmed with the
// same-shape warmCond — and asserts supportability agreement and
// byte-identical answers. wantHit, when non-nil, pins whether the warmed
// run must (true) or must not (false) have been served by the template
// tier; the true case is only enforceable when the warming query itself
// planned, since a failed warm-up leaves nothing to hit.
func checkTemplated(ctx context.Context, rep *Report, inst *Instance, g *ssdl.Grammar, warmCond condition.Node, label string, wantHit *bool) error {
	fresh, err := newMediatorWith(inst, g)
	if err != nil {
		return err
	}
	pf, _, errF := fresh.Plan(ctx, Compact(), inst.Source(), inst.Cond, inst.Attrs)
	freshFeasible, uerr := classify(errF)
	if uerr != nil {
		rep.failf("%s: fresh planning failed unexpectedly: %v", label, uerr)
		return nil
	}
	var freshTSV []byte
	if freshFeasible {
		ans, err := plan.Execute(ctx, pf, fresh)
		if err != nil {
			rep.failf("%s: fresh plan failed to execute: %v\nplan:\n%s", label, err, plan.Format(pf))
			return nil
		}
		if freshTSV, err = tsvBytes(ans); err != nil {
			return err
		}
	}

	tmed, err := newMediatorWith(inst, g)
	if err != nil {
		return err
	}
	tmed.EnableCache()
	_, _, warmErr := tmed.Plan(ctx, Compact(), inst.Source(), warmCond, inst.Attrs)
	warmFeasible, uerr := classify(warmErr)
	if uerr != nil {
		rep.failf("%s: warming query failed unexpectedly: %v\nwarm condition: %s", label, uerr, warmCond.Key())
		return nil
	}

	pb, met, errB := tmed.Plan(ctx, Compact(), inst.Source(), inst.Cond, inst.Attrs)
	boundFeasible, uerr := classify(errB)
	if uerr != nil {
		rep.failf("%s: templated planning failed unexpectedly: %v", label, uerr)
		return nil
	}
	if boundFeasible != freshFeasible {
		rep.failf("%s: template tier flipped supportability: fresh=%v templated=%v",
			label, freshFeasible, boundFeasible)
		return nil
	}
	if wantHit != nil && boundFeasible {
		got := met != nil && met.Template && met.Cached
		switch {
		case *wantHit && warmFeasible && !got:
			rep.failf("%s: second same-shape query did not bind from the cached template (metrics %+v)", label, met)
		case !*wantHit && met != nil && met.Template:
			rep.failf("%s: value-constrained binding was served from a template instead of falling back (metrics %+v)", label, met)
		}
	}
	if !boundFeasible {
		return nil
	}
	ans, err := plan.Execute(ctx, pb, tmed)
	if err != nil {
		rep.failf("%s: bound plan failed to execute: %v\nplan:\n%s", label, err, plan.Format(pb))
		return nil
	}
	boundTSV, err := tsvBytes(ans)
	if err != nil {
		return err
	}
	if !bytes.Equal(boundTSV, freshTSV) {
		rep.failf("%s: bound-template answer is not byte-identical to fresh planning\nfresh (%d rows):\n%stemplated (%d rows):\n%splan:\n%s",
			label, bytes.Count(freshTSV, []byte("\n")), freshTSV,
			bytes.Count(boundTSV, []byte("\n")), boundTSV, plan.Format(pb))
	}
	return nil
}

// newMediatorWith is NewMediator with the grammar swapped out, for the
// derived value-constrained variants.
func newMediatorWith(inst *Instance, g *ssdl.Grammar) (*mediator.Mediator, error) {
	med := mediator.New(inst.Model())
	local, err := source.NewLocal(inst.Source(), inst.Rel, g)
	if err != nil {
		return nil, fmt.Errorf("qa: building source: %w", err)
	}
	if err := med.Register(inst.Source(), local, g); err != nil {
		return nil, fmt.Errorf("qa: registering source: %w", err)
	}
	return med, nil
}

// mutateBindings perturbs each lifted constant injectively within its
// kind, so the rebound condition has the same parameterized shape (equal
// atoms stay equal, distinct atoms stay distinct) but shares no constant
// with the original.
func mutateBindings(vals []condition.Value) []condition.Value {
	out := make([]condition.Value, len(vals))
	for i, v := range vals {
		switch v.Kind {
		case condition.KindInt:
			out[i] = condition.Int(v.I + 1)
		case condition.KindFloat:
			out[i] = condition.Float(v.F + 0.5)
		case condition.KindString:
			// "~" is not an identifier character, so the mutated constant
			// cannot collide with an attribute name and change liftability.
			out[i] = condition.String(v.S + "~")
		case condition.KindBool:
			out[i] = condition.Bool(!v.B)
		default:
			out[i] = v
		}
	}
	return out
}

// enumGrammar derives a value-constrained variant of the instance's
// grammar: every placeholder pattern whose position (attr, op, accepted
// kind) the target query's own constants match is turned into an
// enumeration of exactly those constants. With keepPlaceholders the enum
// rules are appended next to the originals (same LHS, same exports)
// instead of replacing them. Returns nil when the query's constants match
// no placeholder (the variant would equal the original), plus whether at
// least one lifted binding collides with an added enum — the condition
// under which templated planning is guaranteed to fall back.
func enumGrammar(inst *Instance, pz condition.Parameterized, keepPlaceholders bool) (*ssdl.Grammar, bool) {
	// The query's concrete constants by value position.
	type site struct {
		attr string
		op   condition.Op
	}
	consts := make(map[site][]condition.Value)
	for _, a := range condition.Atoms(inst.Cond) {
		if !a.Val.IsParam() {
			s := site{a.Attr, a.Op}
			consts[s] = append(consts[s], a.Val)
		}
	}

	g := inst.Grammar.Clone()
	replaced := false
	added := make(map[site][]condition.Value)
	var extra []ssdl.Rule
	for ri := range g.Rules {
		rhs := g.Rules[ri].RHS
		var enumRHS []ssdl.Symbol
		for si, sym := range rhs {
			if sym.Kind != ssdl.SymAtom || sym.Atom.Val.Literal != nil || len(sym.Atom.Val.OneOf) > 0 {
				continue
			}
			s := site{sym.Atom.Attr, sym.Atom.Op}
			var match []condition.Value
			for _, v := range consts[s] {
				if sym.Atom.Val.Matches(v) {
					match = append(match, v)
				}
			}
			if len(match) == 0 {
				continue
			}
			enumAtom := &ssdl.AtomPattern{Attr: s.attr, Op: s.op, Val: ssdl.EnumPattern(match...)}
			if keepPlaceholders {
				if enumRHS == nil {
					enumRHS = append([]ssdl.Symbol(nil), rhs...)
				}
				enumRHS[si] = ssdl.Symbol{Kind: ssdl.SymAtom, Atom: enumAtom}
			} else {
				rhs[si] = ssdl.Symbol{Kind: ssdl.SymAtom, Atom: enumAtom}
			}
			replaced = true
			added[s] = append(added[s], match...)
		}
		if enumRHS != nil {
			extra = append(extra, ssdl.Rule{LHS: g.Rules[ri].LHS, RHS: enumRHS})
		}
	}
	if !replaced {
		return nil, false
	}
	for _, r := range extra {
		if err := g.AddRule(r.LHS, r.RHS); err != nil {
			panic(err) // cannot happen: the original rule validated
		}
	}

	constrained := false
	for i, s := range pz.Sites {
		for _, v := range added[site{s.Attr, s.Op}] {
			if v.Kind == pz.Bindings[i].Kind && v.Equal(pz.Bindings[i]) {
				constrained = true
			}
		}
	}
	return g, constrained
}

// tsvBytes renders the relation's sorted TSV form for byte-level
// comparison.
func tsvBytes(r *relation.Relation) ([]byte, error) {
	r.Sort()
	var buf bytes.Buffer
	if err := relation.WriteTSV(&buf, r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
