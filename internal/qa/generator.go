package qa

import (
	"math/rand"

	"repro/internal/workload"
)

// GenConfig bounds the generator. The zero value uses defaults tuned so
// the 500-instance corpus plans and executes in seconds: small queries
// keep both planners' rewrite closures well inside their caps, so any
// GenModular↔GenCompact divergence the driver reports is a planner bug,
// not a budget artifact.
type GenConfig struct {
	// MaxAtoms caps the target condition's atom count (default 5).
	MaxAtoms int
	// MaxAttrs caps the domain's attribute count (default 5, min 2).
	MaxAttrs int
	// MaxRows caps the generated relation's row count (default 36).
	MaxRows int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MaxAtoms <= 0 {
		c.MaxAtoms = 5
	}
	if c.MaxAttrs < 2 {
		c.MaxAttrs = 5
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 36
	}
	return c
}

// Generate builds the deterministic instance for a seed with default
// bounds.
func Generate(seed int64) *Instance { return GenerateWith(seed, GenConfig{}) }

// GenerateWith builds the deterministic instance for a seed: a random
// domain, a capability profile drawn from workload.AllProfileClasses, a
// small random relation and a random target query. Structured query
// shapes (conjunction + value list, disjunction of conjunctions) and
// uniformly random trees are mixed, since they stress different rewrite
// and splitting paths.
func GenerateWith(seed int64, cfg GenConfig) *Instance {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(seed))

	nattrs := 2 + r.Intn(cfg.MaxAttrs-1)
	d := workload.RandomDomain(r, nattrs)
	class := workload.AllProfileClasses[r.Intn(len(workload.AllProfileClasses))]
	g := workload.RandomGrammar(d, r, class)
	rows := 4 + r.Intn(cfg.MaxRows-3)
	rel := d.GenRelation(r, rows)

	natoms := 1 + r.Intn(cfg.MaxAtoms)
	var cond = d.RandomQuery(r, natoms)
	if r.Intn(2) == 0 {
		cond = d.RandomStructuredQuery(r, natoms)
	}

	// Request the key plus a random subset of the remaining attributes.
	// Including the key keeps intersection plans exact, so oracle
	// mismatches always indicate bugs rather than the paper's documented
	// keyless-intersection approximation.
	attrs := []string{d.KeyAttr()}
	for _, a := range d.AttrNames() {
		if a != d.KeyAttr() && r.Intn(2) == 0 {
			attrs = append(attrs, a)
		}
	}

	return &Instance{
		Seed:    seed,
		Class:   class,
		Domain:  d,
		Grammar: g,
		Rel:     rel,
		Cond:    cond,
		Attrs:   attrs,
	}
}
