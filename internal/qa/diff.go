package qa

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/genmodular"
	"repro/internal/mediator"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/source"
)

// The harness's cost constants. Their exact values are irrelevant to the
// assertions (both planners price plans under the same model); K1 > K2
// keeps per-query overhead significant so plan choice is non-trivial.
const (
	costK1 = 10
	costK2 = 1
)

// closureMaxCTs and closureMaxAtoms are the rewrite budgets the harness
// gives BOTH planners. They are generous relative to the generator's
// small queries (≤ 5 atoms), so the closures are effectively exhaustive
// and any divergence the driver reports is a planner bug, not a budget
// artifact.
const (
	closureMaxCTs   = 192
	closureMaxAtoms = 24
)

// Modular returns the GenModular reference planner with the harness's
// rewrite budget.
func Modular() *genmodular.Planner {
	return &genmodular.Planner{Rewrite: rewrite.Config{
		Rules:    rewrite.AllRules,
		MaxCTs:   closureMaxCTs,
		MaxAtoms: closureMaxAtoms,
	}}
}

// Compact returns the GenCompact planner under test with the harness's
// rewrite budget.
func Compact() *core.Planner {
	return &core.Planner{Rewrite: rewrite.Config{
		Rules:    rewrite.DistributiveOnly,
		MaxCTs:   closureMaxCTs,
		MaxAtoms: closureMaxAtoms,
	}}
}

// Model returns the harness cost model for the instance: the linear model
// with exact (oracle) cardinalities, so cost comparisons measure the
// planners rather than estimation error.
func (inst *Instance) Model() cost.Model {
	return cost.Model{
		K1:  costK1,
		K2:  costK2,
		Est: cost.NewOracleEstimator(map[string]*relation.Relation{inst.Source(): inst.Rel}),
	}
}

// NewMediator builds a fresh mediator with the instance's source
// registered behind the given querier (the raw Local source when q is
// nil). Each call builds independent checkers and caches, so harness
// runs cannot contaminate each other.
func (inst *Instance) NewMediator(q plan.Querier) (*mediator.Mediator, error) {
	med := mediator.New(inst.Model())
	if q == nil {
		local, err := source.NewLocal(inst.Source(), inst.Rel, inst.Grammar)
		if err != nil {
			return nil, fmt.Errorf("qa: building source: %w", err)
		}
		q = local
	}
	if err := med.Register(inst.Source(), q, inst.Grammar); err != nil {
		return nil, fmt.Errorf("qa: registering source: %w", err)
	}
	return med, nil
}

// Report is the outcome of one differential run. An empty Failures slice
// means every assertion held.
type Report struct {
	Instance *Instance

	// ModularFeasible / CompactFeasible record supportability per
	// scheme.
	ModularFeasible, CompactFeasible bool
	// ModularCost / CompactCost are the chosen plans' model costs
	// (meaningful only when the scheme found a plan).
	ModularCost, CompactCost float64
	// OracleRows is the ground-truth answer cardinality.
	OracleRows int

	// Failures lists every violated assertion, with enough context to
	// debug; Instance.Repro() supplies the rest.
	Failures []string
	// Inconclusive lists assertions that could not be judged because a
	// planner's rewrite closure was truncated at its CT budget: an
	// "infeasible" verdict from a truncated closure may simply mean the
	// supporting CT lies beyond the cap (GenModular's AllRules closure
	// routinely does — exactly the blowup §6 motivates GenCompact with),
	// so it cannot convict the other planner of a bug. Inconclusive
	// entries are not failures; corpus tests report them as skips.
	Inconclusive []string
}

// Failed reports whether any assertion was violated.
func (r *Report) Failed() bool { return len(r.Failures) > 0 }

// String renders the report for test output.
func (r *Report) String() string {
	if !r.Failed() {
		if len(r.Inconclusive) > 0 {
			return fmt.Sprintf("qa: seed %d inconclusive:\n  - %s",
				r.Instance.Seed, strings.Join(r.Inconclusive, "\n  - "))
		}
		return fmt.Sprintf("qa: seed %d ok (modular=%v compact=%v oracle=%d rows)",
			r.Instance.Seed, r.ModularFeasible, r.CompactFeasible, r.OracleRows)
	}
	return fmt.Sprintf("qa: seed %d FAILED:\n  - %s\n%s",
		r.Instance.Seed, strings.Join(r.Failures, "\n  - "), r.Instance.Repro())
}

func (r *Report) failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

func (r *Report) inconcf(format string, args ...any) {
	r.Inconclusive = append(r.Inconclusive, fmt.Sprintf(format, args...))
}

// Differential runs the full differential check on one instance:
//
//	(a) GenModular and GenCompact agree on supportability;
//	(b) both executed answers equal the oracle's answer;
//	(c) GenCompact's chosen plan costs no more than GenModular's
//	    minimum under the shared cost model.
//
// The returned error reports harness infrastructure problems only
// (generator/oracle/registration); assertion violations land in
// Report.Failures.
func Differential(ctx context.Context, inst *Instance) (*Report, error) {
	rep := &Report{Instance: inst}

	oracle, err := inst.Oracle()
	if err != nil {
		return nil, err
	}
	rep.OracleRows = oracle.Len()

	med, err := inst.NewMediator(nil)
	if err != nil {
		return nil, err
	}
	model := med.Model()

	planM, metM, errM := med.Plan(ctx, Modular(), inst.Source(), inst.Cond, inst.Attrs)
	planC, metC, errC := med.Plan(ctx, Compact(), inst.Source(), inst.Cond, inst.Attrs)

	rep.ModularFeasible, err = classify(errM)
	if err != nil {
		rep.failf("GenModular failed unexpectedly: %v", err)
	}
	rep.CompactFeasible, err = classify(errC)
	if err != nil {
		rep.failf("GenCompact failed unexpectedly: %v", err)
	}
	if rep.Failed() {
		return rep, nil
	}

	// A closure that reached the CT cap may have been cut off before the
	// one CT that makes the query supportable (or the plan cheap), so
	// verdicts depending on its completeness are inconclusive, not wrong.
	truncM := metM != nil && metM.CTs >= closureMaxCTs
	truncC := metC != nil && metC.CTs >= closureMaxCTs

	// (a) supportability agreement. "Feasible" is self-certifying — the
	// plan gets executed against the oracle below — but "infeasible" from
	// a truncated closure convicts nobody.
	if rep.ModularFeasible != rep.CompactFeasible {
		switch {
		case !rep.ModularFeasible && truncM:
			rep.inconcf("GenModular infeasible with its closure truncated at %d CTs, GenCompact feasible: agreement unjudgeable", metM.CTs)
		case !rep.CompactFeasible && truncC:
			rep.inconcf("GenCompact infeasible with its closure truncated at %d CTs, GenModular feasible: agreement unjudgeable", metC.CTs)
		default:
			rep.failf("supportability disagreement: GenModular feasible=%v, GenCompact feasible=%v",
				rep.ModularFeasible, rep.CompactFeasible)
		}
	}

	// (b) every produced plan must execute to the oracle's answer — also
	// when supportability is disputed, since a plan that exists must
	// still be correct.
	runs := make([]struct {
		name string
		p    plan.Plan
	}, 0, 2)
	if rep.ModularFeasible {
		runs = append(runs, struct {
			name string
			p    plan.Plan
		}{"GenModular", planM})
	}
	if rep.CompactFeasible {
		runs = append(runs, struct {
			name string
			p    plan.Plan
		}{"GenCompact", planC})
	}
	for _, run := range runs {
		ans, err := plan.Execute(ctx, run.p, med)
		if err != nil {
			rep.failf("%s plan failed to execute: %v\nplan:\n%s", run.name, err, plan.Format(run.p))
			continue
		}
		if !ans.Equal(oracle) {
			rep.failf("%s answer diverges from oracle: got %d rows, oracle %d rows\nplan:\n%s",
				run.name, ans.Len(), oracle.Len(), plan.Format(run.p))
		}
	}

	// (c) GenCompact's plan is minimum-cost, judged only when both
	// schemes produced plans. The epsilon absorbs floating-point
	// summation-order noise, nothing more.
	if rep.ModularFeasible && rep.CompactFeasible {
		rep.ModularCost = model.PlanCost(planM)
		rep.CompactCost = model.PlanCost(planC)
		if rep.CompactCost > rep.ModularCost*(1+1e-9)+1e-9 {
			if truncC {
				rep.inconcf("GenCompact plan cost %.4f exceeds GenModular minimum %.4f, but GenCompact's closure was truncated at %d CTs: minimality unjudgeable",
					rep.CompactCost, rep.ModularCost, metC.CTs)
			} else {
				rep.failf("GenCompact plan cost %.4f exceeds GenModular minimum %.4f\ncompact plan:\n%smodular plan:\n%s",
					rep.CompactCost, rep.ModularCost, plan.Format(planC), plan.Format(planM))
			}
		}
	}
	return rep, nil
}

// classify splits a planner error into (feasible, unexpected-error):
// ErrInfeasible is a legitimate outcome, everything else is a harness
// failure.
func classify(err error) (feasible bool, unexpected error) {
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, planner.ErrInfeasible):
		return false, nil
	default:
		return false, err
	}
}
