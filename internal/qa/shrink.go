package qa

import (
	"repro/internal/condition"
	"repro/internal/relation"
	"repro/internal/ssdl"
)

// Property reports whether an instance still exhibits the failure being
// minimized. Implementations must treat harness infrastructure errors
// (generator, registration, oracle) as "does not reproduce" so the
// minimizer never trades one bug for another.
type Property func(*Instance) bool

// maxShrinkProbes bounds the number of Property evaluations one Shrink
// call may spend. Each probe plans and executes two planners, so an
// unbounded greedy loop on a pathological instance could take minutes;
// the bound keeps shrinking interactive and merely leaves a slightly
// larger repro when it is hit.
const maxShrinkProbes = 400

// Shrink greedily minimizes a failing instance while the property keeps
// holding: it repeatedly tries to drop relation rows (largest chunks
// first), hoist or drop condition subtrees, drop requested attributes
// (never the key) and drop grammar rules, restarting after every
// accepted simplification until a fixpoint or the probe budget is
// reached. The result reproduces the failure and is no larger than the
// input; Repro() renders it for a bug report.
func Shrink(inst *Instance, failing Property) *Instance {
	cur := inst
	probes := 0
	try := func(cand *Instance) bool {
		if cand == nil || probes >= maxShrinkProbes || cand.size() >= cur.size() {
			return false
		}
		probes++
		if failing(cand) {
			cur = cand
			return true
		}
		return false
	}

	for {
		improved := false

		// Rows: remove chunks, halving the chunk size down to single
		// tuples (a light ddmin). Largest cuts first converge fastest.
		tuples := cur.Rel.Tuples()
		for size := len(tuples) / 2; size >= 1 && !improved; size /= 2 {
			for lo := 0; lo+size <= len(tuples); lo += size {
				keep := make([]relation.Tuple, 0, len(tuples)-size)
				keep = append(keep, tuples[:lo]...)
				keep = append(keep, tuples[lo+size:]...)
				if try(cur.withRows(keep)) {
					improved = true
					break
				}
			}
		}
		if improved {
			continue
		}

		// Condition: hoist a subtree over its parent connective, or drop
		// one child of an n-ary connective.
		for _, c := range condCandidates(cur.Cond) {
			if try(cur.withCond(c)) {
				improved = true
				break
			}
		}
		if improved {
			continue
		}

		// Attributes: drop any non-key requested attribute.
		for i, a := range cur.Attrs {
			if a == cur.Domain.KeyAttr() {
				continue
			}
			attrs := make([]string, 0, len(cur.Attrs)-1)
			attrs = append(attrs, cur.Attrs[:i]...)
			attrs = append(attrs, cur.Attrs[i+1:]...)
			if try(cur.withAttrs(attrs)) {
				improved = true
				break
			}
		}
		if improved {
			continue
		}

		// Grammar: drop one rule. Candidates that break the grammar fail
		// the property via its infrastructure-error handling and are
		// simply rejected.
		for i := range cur.Grammar.Rules {
			rules := make([]ssdl.Rule, 0, len(cur.Grammar.Rules)-1)
			rules = append(rules, cur.Grammar.Rules[:i]...)
			rules = append(rules, cur.Grammar.Rules[i+1:]...)
			if try(cur.withRules(rules)) {
				improved = true
				break
			}
		}
		if !improved || probes >= maxShrinkProbes {
			return cur
		}
	}
}

// condCandidates enumerates one-step simplifications of a condition:
// every proper subtree hoisted to the root, and every n-ary connective
// with one child dropped (in place). Candidates are ordered biggest
// simplification first.
func condCandidates(n condition.Node) []condition.Node {
	var out []condition.Node
	// Hoisting any subtree to the root is the biggest possible cut.
	collectSubtrees(n, false, &out)
	// Then in-place single-child drops anywhere in the tree.
	out = append(out, dropOneKid(n)...)
	return out
}

// collectSubtrees appends every subtree of n (excluding n itself unless
// includeSelf) to out, shallowest first.
func collectSubtrees(n condition.Node, includeSelf bool, out *[]condition.Node) {
	if includeSelf {
		*out = append(*out, n)
	}
	switch t := n.(type) {
	case *condition.And:
		for _, k := range t.Kids {
			collectSubtrees(k, true, out)
		}
	case *condition.Or:
		for _, k := range t.Kids {
			collectSubtrees(k, true, out)
		}
	}
}

// dropOneKid returns every variant of n with exactly one child of one
// connective removed. A connective left with a single child is replaced
// by that child.
func dropOneKid(n condition.Node) []condition.Node {
	rebuild := func(isAnd bool, kids []condition.Node) condition.Node {
		if len(kids) == 1 {
			return kids[0]
		}
		if isAnd {
			return condition.NewAnd(kids...)
		}
		return condition.NewOr(kids...)
	}
	var walk func(condition.Node) []condition.Node
	walk = func(n condition.Node) []condition.Node {
		var kids []condition.Node
		var isAnd bool
		switch t := n.(type) {
		case *condition.And:
			kids, isAnd = t.Kids, true
		case *condition.Or:
			kids, isAnd = t.Kids, false
		default:
			return nil
		}
		var out []condition.Node
		for i := range kids {
			rest := make([]condition.Node, 0, len(kids)-1)
			rest = append(rest, kids[:i]...)
			rest = append(rest, kids[i+1:]...)
			out = append(out, rebuild(isAnd, rest))
		}
		for i, k := range kids {
			for _, sub := range walk(k) {
				next := append([]condition.Node(nil), kids...)
				next[i] = sub
				out = append(out, rebuild(isAnd, next))
			}
		}
		return out
	}
	return walk(n)
}

// withRows returns a copy of the instance over a relation holding only
// the given tuples.
func (inst *Instance) withRows(keep []relation.Tuple) *Instance {
	rel := relation.New(inst.Rel.Schema())
	if err := rel.Append(keep...); err != nil {
		return nil
	}
	out := *inst
	out.Rel = rel
	out.Shrunk = true
	return &out
}

// withCond returns a copy of the instance with a different condition.
func (inst *Instance) withCond(c condition.Node) *Instance {
	out := *inst
	out.Cond = c
	out.Shrunk = true
	return &out
}

// withAttrs returns a copy of the instance with different requested
// attributes.
func (inst *Instance) withAttrs(attrs []string) *Instance {
	out := *inst
	out.Attrs = attrs
	out.Shrunk = true
	return &out
}

// withRules returns a copy of the instance whose grammar keeps only the
// given rules, or nil when the reduced grammar is invalid (a condition
// nonterminal left without rules, a dangling reference). The grammar is
// rebuilt through the ssdl constructors — Rules is positionally indexed,
// so a grammar must never be assembled by editing the slice in place.
func (inst *Instance) withRules(rules []ssdl.Rule) *Instance {
	g := ssdl.NewGrammar(inst.Grammar.Source)
	g.Schema = append([]string(nil), inst.Grammar.Schema...)
	g.Key = inst.Grammar.Key
	for _, r := range rules {
		if err := g.AddRule(r.LHS, append([]ssdl.Symbol(nil), r.RHS...)); err != nil {
			return nil
		}
	}
	for nt, attrs := range inst.Grammar.CondAttrs {
		g.SetCondAttrs(nt, attrs.Sorted()...)
	}
	if err := g.Validate(); err != nil {
		return nil
	}
	out := *inst
	out.Grammar = g
	out.Shrunk = true
	return &out
}
