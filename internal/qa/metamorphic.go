package qa

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/condition"
	"repro/internal/plan"
	"repro/internal/source"
)

// Variant is a semantics-preserving transformation of an instance's
// condition. Planning and executing a variant must yield the same answer
// as the original — the transformations only reshape the condition tree,
// never its meaning.
type Variant struct {
	// Name identifies the transformation in failure messages.
	Name string
	// Cond is the transformed condition.
	Cond condition.Node
}

// Variants returns the instance's metamorphic condition variants:
//
//	commute     — every And/Or's children reversed;
//	reassociate — flat n-ary connectives right-nested (a ∧ b ∧ c becomes
//	              a ∧ (b ∧ c));
//	distribute  — one distributive expansion applied at the first
//	              applicable site (X ∧ (a ∨ b) becomes (X∧a) ∨ (X∧b)).
//
// Transformations that do not change the tree (e.g. distribute on a pure
// conjunction) are omitted. All transformations are deterministic, so a
// variant failure reproduces from the seed alone.
func (inst *Instance) Variants() []Variant {
	var out []Variant
	if v := commute(inst.Cond); v.Key() != inst.Cond.Key() {
		out = append(out, Variant{Name: "commute", Cond: v})
	}
	if v := reassociate(inst.Cond); v.Key() != inst.Cond.Key() {
		out = append(out, Variant{Name: "reassociate", Cond: v})
	}
	if v, ok := distribute(inst.Cond); ok {
		out = append(out, Variant{Name: "distribute", Cond: v})
	}
	return out
}

// commute reverses the child order of every connective. Nodes are
// immutable (cached keys/hashes), so transformed trees are always built
// fresh; untouched subtrees may be shared.
func commute(n condition.Node) condition.Node {
	switch t := n.(type) {
	case *condition.And:
		kids := make([]condition.Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[len(t.Kids)-1-i] = commute(k)
		}
		return condition.NewAnd(kids...)
	case *condition.Or:
		kids := make([]condition.Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[len(t.Kids)-1-i] = commute(k)
		}
		return condition.NewOr(kids...)
	default:
		return n
	}
}

// reassociate right-nests flat connectives: And(a, b, c, ...) becomes
// And(a, And(b, c, ...)), recursively.
func reassociate(n condition.Node) condition.Node {
	switch t := n.(type) {
	case *condition.And:
		kids := reassocKids(t.Kids)
		if len(kids) > 2 {
			return condition.NewAnd(kids[0], condition.NewAnd(kids[1:]...))
		}
		return condition.NewAnd(kids...)
	case *condition.Or:
		kids := reassocKids(t.Kids)
		if len(kids) > 2 {
			return condition.NewOr(kids[0], condition.NewOr(kids[1:]...))
		}
		return condition.NewOr(kids...)
	default:
		return n
	}
}

func reassocKids(kids []condition.Node) []condition.Node {
	out := make([]condition.Node, len(kids))
	for i, k := range kids {
		out[i] = reassociate(k)
	}
	return out
}

// distribute applies one ∧-over-∨ expansion at the first (depth-first)
// applicable site and reports whether one was found.
func distribute(n condition.Node) (condition.Node, bool) {
	switch t := n.(type) {
	case *condition.And:
		for i, k := range t.Kids {
			or, ok := k.(*condition.Or)
			if !ok {
				continue
			}
			rest := make([]condition.Node, 0, len(t.Kids)-1)
			rest = append(rest, t.Kids[:i]...)
			rest = append(rest, t.Kids[i+1:]...)
			terms := make([]condition.Node, len(or.Kids))
			for j, alt := range or.Kids {
				kids := make([]condition.Node, 0, len(rest)+1)
				kids = append(kids, rest...)
				kids = append(kids, alt)
				terms[j] = condition.NewAnd(kids...)
			}
			return condition.NewOr(terms...), true
		}
		// No Or child at this level; recurse.
		for i, k := range t.Kids {
			if d, ok := distribute(k); ok {
				kids := append([]condition.Node(nil), t.Kids...)
				kids[i] = d
				return condition.NewAnd(kids...), true
			}
		}
		return n, false
	case *condition.Or:
		for i, k := range t.Kids {
			if d, ok := distribute(k); ok {
				kids := append([]condition.Node(nil), t.Kids...)
				kids[i] = d
				return condition.NewOr(kids...), true
			}
		}
		return n, false
	default:
		return n, false
	}
}

// Metamorphic checks the execution-level invariants on one instance: for
// the GenCompact pipeline,
//
//	(1) commuted/reassociated/distributed condition variants preserve
//	    supportability and yield the oracle answer;
//	(2) the mediator's plan cache does not change answers (and actually
//	    hits on the second identical query);
//	(3) parallel execution yields the same answer as sequential;
//	(4) a source-answer cache in front of the source does not change
//	    answers, on a cold or a warm cache.
//
// Like Differential, infrastructure errors come back as error and
// assertion violations land in Report.Failures.
func Metamorphic(ctx context.Context, inst *Instance) (*Report, error) {
	rep := &Report{Instance: inst}

	oracle, err := inst.Oracle()
	if err != nil {
		return nil, err
	}
	rep.OracleRows = oracle.Len()

	med, err := inst.NewMediator(nil)
	if err != nil {
		return nil, err
	}

	base, metB, errB := med.Plan(ctx, Compact(), inst.Source(), inst.Cond, inst.Attrs)
	feasible, uerr := classify(errB)
	if uerr != nil {
		rep.failf("GenCompact failed unexpectedly on the original condition: %v", uerr)
		return rep, nil
	}
	rep.CompactFeasible = feasible
	truncB := metB != nil && metB.CTs >= closureMaxCTs

	// (1) Condition-variant invariance. Supportability must be preserved
	// too: the checker canonicalizes commutative/associative variants to
	// the same condition, and the distributed variant is reachable from
	// the original inside the harness's rewrite budget — unless a closure
	// was CT-cap-truncated, in which case a flip is inconclusive (see
	// Differential).
	for _, v := range inst.Variants() {
		pv, metV, errV := med.Plan(ctx, Compact(), inst.Source(), v.Cond, inst.Attrs)
		vFeasible, uerr := classify(errV)
		if uerr != nil {
			rep.failf("variant %s: planner failed unexpectedly: %v\nvariant condition: %s",
				v.Name, uerr, v.Cond.Key())
			continue
		}
		if vFeasible != feasible {
			truncV := metV != nil && metV.CTs >= closureMaxCTs
			if (!vFeasible && truncV) || (!feasible && truncB) {
				rep.inconcf("variant %s: supportability flipped (original=%v variant=%v) with a CT-cap-truncated closure: unjudgeable",
					v.Name, feasible, vFeasible)
			} else {
				rep.failf("variant %s: supportability flipped: original=%v variant=%v\nvariant condition: %s",
					v.Name, feasible, vFeasible, v.Cond.Key())
			}
			continue
		}
		if !vFeasible {
			continue
		}
		ans, err := plan.Execute(ctx, pv, med)
		if err != nil {
			rep.failf("variant %s: plan failed to execute: %v\nplan:\n%s", v.Name, err, plan.Format(pv))
			continue
		}
		if !ans.Equal(oracle) {
			rep.failf("variant %s: answer diverges from oracle: got %d rows, oracle %d rows\nvariant condition: %s\nplan:\n%s",
				v.Name, ans.Len(), oracle.Len(), v.Cond.Key(), plan.Format(pv))
		}
	}
	if !feasible {
		return rep, nil
	}

	// (2) Plan-cache invariance: a cached plan must execute to the same
	// answer, and the second identical Plan call must actually hit.
	cmed, err := inst.NewMediator(nil)
	if err != nil {
		return nil, err
	}
	cmed.EnableCache()
	if _, _, err := cmed.Plan(ctx, Compact(), inst.Source(), inst.Cond, inst.Attrs); err != nil {
		rep.failf("plan cache: first Plan call failed: %v", err)
	} else {
		p2, met2, err := cmed.Plan(ctx, Compact(), inst.Source(), inst.Cond, inst.Attrs)
		switch {
		case err != nil:
			rep.failf("plan cache: second Plan call failed: %v", err)
		case met2 == nil || !met2.Cached:
			rep.failf("plan cache: second identical Plan call missed the cache")
		default:
			ans, err := plan.Execute(ctx, p2, cmed)
			if err != nil {
				rep.failf("plan cache: cached plan failed to execute: %v\nplan:\n%s", err, plan.Format(p2))
			} else if !ans.Equal(oracle) {
				rep.failf("plan cache: cached plan's answer diverges from oracle: got %d rows, oracle %d rows\nplan:\n%s",
					ans.Len(), oracle.Len(), plan.Format(p2))
			}
		}
	}

	// (3) Parallel-execution invariance.
	model := inst.Model()
	resolver := func(c *plan.Choice) (plan.Plan, error) { return model.Resolve(c) }
	pans, err := plan.ExecuteParallel(ctx, base, med, plan.ExecOptions{Workers: 4, ChoiceResolver: resolver})
	if err != nil {
		rep.failf("parallel execution failed: %v\nplan:\n%s", err, plan.Format(base))
	} else if !pans.Equal(oracle) {
		rep.failf("parallel answer diverges from oracle: got %d rows, oracle %d rows\nplan:\n%s",
			pans.Len(), oracle.Len(), plan.Format(base))
	}

	// (4) Source-cache invariance: cold then warm.
	local, err := source.NewLocal(inst.Source(), inst.Rel, inst.Grammar)
	if err != nil {
		return nil, fmt.Errorf("qa: building source: %w", err)
	}
	cached := source.NewCached(inst.Source(), local, source.CacheOptions{})
	smed, err := inst.NewMediator(cached)
	if err != nil {
		return nil, err
	}
	for _, pass := range []string{"cold", "warm"} {
		ans, err := plan.Execute(ctx, base, smed)
		if err != nil {
			rep.failf("source cache (%s): plan failed to execute: %v\nplan:\n%s", pass, err, plan.Format(base))
			break
		}
		if !ans.Equal(oracle) {
			rep.failf("source cache (%s): answer diverges from oracle: got %d rows, oracle %d rows\nplan:\n%s",
				pass, ans.Len(), oracle.Len(), plan.Format(base))
		}
	}
	return rep, nil
}

// FaultTolerance checks the fault-injection invariants on one instance:
//
//	(i)  a transient fault (first call fails, then the source recovers)
//	     behind the resilient retry wrapper must still yield the oracle
//	     answer;
//	(ii) persistent random faults with no retries must yield either the
//	     oracle answer (lucky run), a sound partial answer — non-nil
//	     relation that is a subset of the oracle's, annotated with a
//	     well-formed *plan.PartialError — or a fail-closed error with a
//	     nil relation. Anything else (silent wrong answer, partial
//	     over-approximation, malformed PartialError) is a violation.
func FaultTolerance(ctx context.Context, inst *Instance) (*Report, error) {
	rep := &Report{Instance: inst}

	oracle, err := inst.Oracle()
	if err != nil {
		return nil, err
	}
	rep.OracleRows = oracle.Len()

	med, err := inst.NewMediator(nil)
	if err != nil {
		return nil, err
	}
	p, _, errP := med.Plan(ctx, Compact(), inst.Source(), inst.Cond, inst.Attrs)
	feasible, uerr := classify(errP)
	if uerr != nil {
		rep.failf("GenCompact failed unexpectedly: %v", uerr)
		return rep, nil
	}
	rep.CompactFeasible = feasible
	if !feasible {
		return rep, nil
	}

	noSleep := func(context.Context, time.Duration) error { return nil }

	// (i) Transient fault + retries: the answer must come out intact.
	local, err := source.NewLocal(inst.Source(), inst.Rel, inst.Grammar)
	if err != nil {
		return nil, fmt.Errorf("qa: building source: %w", err)
	}
	flaky := source.NewFlaky(local).FailFirst(1)
	res := source.NewResilient(inst.Source(), flaky, source.ResilienceOptions{
		MaxRetries: 3,
		Sleep:      noSleep,
	})
	fmed, err := inst.NewMediator(res)
	if err != nil {
		return nil, err
	}
	ans, err := plan.Execute(ctx, p, fmed)
	if err != nil {
		rep.failf("transient fault with retries: execution failed: %v\nplan:\n%s", err, plan.Format(p))
	} else if !ans.Equal(oracle) {
		rep.failf("transient fault with retries: answer diverges from oracle: got %d rows, oracle %d rows\nplan:\n%s",
			ans.Len(), oracle.Len(), plan.Format(p))
	}

	// (ii) Persistent random faults, no retries, partial answers allowed.
	local2, err := source.NewLocal(inst.Source(), inst.Rel, inst.Grammar)
	if err != nil {
		return nil, fmt.Errorf("qa: building source: %w", err)
	}
	flaky2 := source.NewFlaky(local2).FailRate(0.5, inst.Seed)
	pmed, err := inst.NewMediator(flaky2)
	if err != nil {
		return nil, err
	}
	model := inst.Model()
	resolver := func(c *plan.Choice) (plan.Plan, error) { return model.Resolve(c) }
	pans, perr := plan.ExecuteParallel(ctx, p, pmed, plan.ExecOptions{AllowPartial: true, ChoiceResolver: resolver})

	var pe *plan.PartialError
	switch {
	case perr == nil:
		if !pans.Equal(oracle) {
			rep.failf("faulty source, no error reported: answer diverges from oracle: got %d rows, oracle %d rows\nplan:\n%s",
				pans.Len(), oracle.Len(), plan.Format(p))
		}
	case errors.As(perr, &pe):
		if pans == nil {
			rep.failf("partial answer has nil relation: %v", perr)
			break
		}
		if len(pe.Dropped) == 0 {
			rep.failf("PartialError with no dropped branches: %v", perr)
		}
		sub, serr := subsetOf(pans, oracle)
		if serr != nil {
			rep.failf("partial answer not comparable to oracle: %v", serr)
		} else if !sub {
			rep.failf("partial answer is NOT a subset of the oracle answer (%d rows vs oracle %d): unsound degradation\nplan:\n%s",
				pans.Len(), oracle.Len(), plan.Format(p))
		}
	default:
		// Fail-closed: no relation may accompany a non-partial error.
		if pans != nil {
			rep.failf("fail-closed error carries a non-nil relation (%d rows): %v", pans.Len(), perr)
		}
	}
	return rep, nil
}
