package qa

import (
	"context"

	"repro/internal/plan"
)

// ProfileConsistency checks the execution-profile invariants on one
// instance: with profiling enabled, both engines must still produce the
// oracle answer, and the collected ExecProfile must account for every
// row —
//
//	(1) the root operator's rows-out equals the answer's cardinality
//	    (answers are sets, and the profile counts delivered chunks);
//	(2) every operator with children reports rows-in equal to the sum of
//	    its children's rows-out: rows cross an operator boundary exactly
//	    once, in both the streaming and the materialized engine;
//	(3) the mediator path produces a profile on the template-cache miss
//	    AND on the hit — a bound template must profile like a freshly
//	    planned query.
//
// Like Differential, infrastructure errors come back as error and
// assertion violations land in Report.Failures.
func ProfileConsistency(ctx context.Context, inst *Instance) (*Report, error) {
	rep := &Report{Instance: inst}

	oracle, err := inst.Oracle()
	if err != nil {
		return nil, err
	}
	rep.OracleRows = oracle.Len()

	med, err := inst.NewMediator(nil)
	if err != nil {
		return nil, err
	}
	p, _, errP := med.Plan(ctx, Compact(), inst.Source(), inst.Cond, inst.Attrs)
	feasible, uerr := classify(errP)
	if uerr != nil {
		rep.failf("GenCompact failed unexpectedly: %v", uerr)
		return rep, nil
	}
	rep.CompactFeasible = feasible
	if !feasible {
		return rep, nil
	}
	model := inst.Model()
	resolver := func(c *plan.Choice) (plan.Plan, error) { return model.Resolve(c) }

	// Streaming engine across execution shapes.
	for _, shape := range []struct {
		name    string
		workers int
		chunk   int
	}{
		{"sequential", 1, 0},
		{"parallel", 4, 0},
		{"chunk=1", 1, 1},
	} {
		prof := plan.NewProfile()
		ans, err := plan.ExecuteStream(ctx, p, med, plan.StreamOptions{
			Workers:        shape.workers,
			ChunkSize:      shape.chunk,
			ChoiceResolver: resolver,
			Profile:        prof,
		})
		if err != nil {
			rep.failf("profile streaming (%s): execution failed: %v\nplan:\n%s", shape.name, err, plan.Format(p))
			continue
		}
		if !ans.Equal(oracle) {
			rep.failf("profile streaming (%s): profiled run diverges from oracle: got %d rows, oracle %d rows",
				shape.name, ans.Len(), oracle.Len())
			continue
		}
		checkProfile(rep, "streaming "+shape.name, prof.Snapshot(), ans.Len())
	}

	// Materialized engine, sequential and parallel.
	for _, workers := range []int{1, 4} {
		prof := plan.NewProfile()
		ans, err := plan.ExecuteParallel(ctx, p, med, plan.ExecOptions{
			Workers:        workers,
			ChoiceResolver: resolver,
			Profile:        prof,
		})
		if err != nil {
			rep.failf("profile materialized (workers=%d): execution failed: %v\nplan:\n%s", workers, err, plan.Format(p))
			continue
		}
		if !ans.Equal(oracle) {
			rep.failf("profile materialized (workers=%d): profiled run diverges from oracle: got %d rows, oracle %d rows",
				workers, ans.Len(), oracle.Len())
			continue
		}
		checkProfile(rep, "materialized", prof.Snapshot(), ans.Len())
	}

	// Mediator path with the plan cache on: the first Answer plans (a
	// template/cache miss), the second binds or replays — both must carry
	// a consistent profile.
	cmed, err := inst.NewMediator(nil)
	if err != nil {
		return nil, err
	}
	cmed.EnableCache()
	for _, label := range []string{"template miss", "template hit"} {
		res, err := cmed.Answer(ctx, Compact(), inst.Source(), inst.Cond, inst.Attrs)
		if err != nil {
			rep.failf("profile mediator (%s): Answer failed: %v", label, err)
			break
		}
		if res.Profile == nil {
			rep.failf("profile mediator (%s): no execution profile on result", label)
			continue
		}
		if !res.Relation.Equal(oracle) {
			rep.failf("profile mediator (%s): answer diverges from oracle: got %d rows, oracle %d rows",
				label, res.Relation.Len(), oracle.Len())
			continue
		}
		checkProfile(rep, "mediator "+label, res.Profile, res.Relation.Len())
	}
	return rep, nil
}

// checkProfile asserts the row-accounting invariants over one profile
// tree: root rows-out matches the answer, and every internal operator's
// rows-in equals the sum of its children's rows-out.
func checkProfile(rep *Report, label string, ep *plan.ExecProfile, answerRows int) {
	if ep == nil {
		rep.failf("profile (%s): snapshot is nil", label)
		return
	}
	if int(ep.RowsOut) != answerRows {
		rep.failf("profile (%s): root %s rows out = %d, answer has %d rows\n%s",
			label, ep.Op, ep.RowsOut, answerRows, plan.FormatProfile(ep))
	}
	ep.Walk(func(n *plan.ExecProfile) {
		if len(n.Children) == 0 {
			return
		}
		var sum int64
		for _, c := range n.Children {
			sum += c.RowsOut
		}
		if n.RowsIn != sum {
			rep.failf("profile (%s): operator %s rows in = %d but its children emitted %d: rows crossed the boundary more or less than once\n%s",
				label, n.Op, n.RowsIn, sum, plan.FormatProfile(ep))
		}
	})
}
