package csqp

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/condition"
)

// SelectStmt is a parsed SELECT statement: the target query
// SP(Cond, Attrs, Source) in familiar clothing.
type SelectStmt struct {
	// Attrs are the projected attributes ("*" expands to the source's
	// declared schema at execution time and is recorded here as a
	// single "*" entry).
	Attrs []string
	// Source is the FROM source name.
	Source string
	// Cond is the WHERE condition (trivially true when absent).
	Cond Condition
}

// ParseSelect reads a statement of the form
//
//	SELECT a, b FROM src [WHERE <condition>]
//
// Keywords are case-insensitive; the condition uses the same surface
// syntax as ParseCondition (including the paper's ^/_ connectors). This is
// deliberately the whole grammar — the paper's target queries are
// select-project queries, nothing more.
func ParseSelect(stmt string) (*SelectStmt, error) {
	rest, ok := cutKeyword(strings.TrimSpace(stmt), "select")
	if !ok {
		return nil, fmt.Errorf("csqp: statement must start with SELECT")
	}
	fromIdx := keywordIndex(rest, "from")
	if fromIdx < 0 {
		return nil, fmt.Errorf("csqp: missing FROM clause")
	}
	attrPart := rest[:fromIdx]
	rest = rest[fromIdx+len("from"):]

	var attrs []string
	for _, a := range strings.Split(attrPart, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if strings.ContainsAny(a, " \t") {
			return nil, fmt.Errorf("csqp: malformed projection %q", a)
		}
		attrs = append(attrs, a)
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("csqp: empty projection list")
	}
	if len(attrs) > 1 {
		for _, a := range attrs {
			if a == "*" {
				return nil, fmt.Errorf("csqp: * cannot be combined with named attributes")
			}
		}
	}

	var condText string
	if whereIdx := keywordIndex(rest, "where"); whereIdx >= 0 {
		condText = strings.TrimSpace(rest[whereIdx+len("where"):])
		rest = rest[:whereIdx]
	}
	source := strings.TrimSpace(rest)
	if source == "" || strings.ContainsAny(source, " \t") {
		return nil, fmt.Errorf("csqp: malformed FROM source %q", source)
	}

	var cond Condition = condition.True()
	if condText != "" {
		var err error
		cond, err = condition.Parse(condText)
		if err != nil {
			return nil, err
		}
	}
	return &SelectStmt{Attrs: attrs, Source: source, Cond: cond}, nil
}

// QuerySQL parses and answers a SELECT statement with the system's default
// strategy. `SELECT *` projects the source's full declared schema.
func (s *System) QuerySQL(stmt string) (*Result, error) {
	sel, err := ParseSelect(stmt)
	if err != nil {
		return nil, err
	}
	attrs := sel.Attrs
	if len(attrs) == 1 && attrs[0] == "*" {
		ctx, err := s.med.Context(sel.Source)
		if err != nil {
			return nil, err
		}
		attrs = ctx.Checker.Grammar().Schema
		if len(attrs) == 0 {
			return nil, fmt.Errorf("csqp: source %q declares no schema; list attributes explicitly", sel.Source)
		}
	}
	return s.QueryCond(context.Background(), s.strategy, sel.Source, sel.Cond, attrs)
}

// cutKeyword strips a leading case-insensitive keyword followed by a space
// boundary.
func cutKeyword(s, kw string) (string, bool) {
	if len(s) < len(kw) || !strings.EqualFold(s[:len(kw)], kw) {
		return s, false
	}
	rest := s[len(kw):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return s, false
	}
	return rest, true
}

// keywordIndex finds a case-insensitive keyword at a word boundary,
// outside quotes.
func keywordIndex(s, kw string) int {
	lower := strings.ToLower(s)
	var quote byte
	for i := 0; i+len(kw) <= len(s); i++ {
		c := s[i]
		if quote != 0 {
			if c == quote && (i == 0 || s[i-1] != '\\') {
				quote = 0
			}
			continue
		}
		if c == '"' || c == '\'' {
			quote = c
			continue
		}
		if lower[i:i+len(kw)] == kw {
			beforeOK := i == 0 || lower[i-1] == ' ' || lower[i-1] == '\t' || lower[i-1] == ','
			afterOK := i+len(kw) == len(s) || lower[i+len(kw)] == ' ' || lower[i+len(kw)] == '\t'
			if beforeOK && afterOK {
				return i
			}
		}
	}
	return -1
}
