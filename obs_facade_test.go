package csqp

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestTraceEndToEnd(t *testing.T) {
	sys := demoSystem(t)
	ctx, tr := Trace(context.Background())
	res, err := sys.QueryContext(ctx, "books",
		`(author = "Sigmund Freud" or author = "Carl Jung") and title contains "dreams"`,
		"title", "isbn")
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Len() == 0 {
		t.Fatal("empty answer")
	}
	tree := tr.Tree()
	// The whole lifecycle must be visible: planning phases nested under
	// the mediator, execution with per-source queries.
	for _, want := range []string{
		"mediator.answer",
		"mediator.plan",
		"plan.rewrite",
		"plan.generate",
		"plan.fix",
		"plan.execute",
		"exec.source",
		"strategy=GenCompact",
		"source=books",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("trace tree missing %q:\n%s", want, tree)
		}
	}
}

func TestUntracedQueryRecordsNothing(t *testing.T) {
	sys := demoSystem(t)
	_, tr := Trace(context.Background())
	// Plain context: the tracer from a different context must stay empty.
	if _, err := sys.Query("books", `author = "Carl Jung"`, "isbn"); err != nil {
		t.Fatal(err)
	}
	if n := len(tr.Spans()); n != 0 {
		t.Fatalf("unrelated tracer captured %d spans", n)
	}
}

func TestMetricsHandlerEndToEnd(t *testing.T) {
	rel, g := workload.Bookstore(2000, 1)
	sys := NewSystem(Options{QueryRetries: 1})
	if err := sys.AddSourceGrammar(rel, g); err != nil {
		t.Fatal(err)
	}
	sys.EnableCache()
	cond := `author = "Carl Jung" and title contains "dreams"`
	if _, err := sys.Query("books", cond, "isbn"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query("books", cond, "isbn"); err != nil { // cache hit
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	sys.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		// Repeated constants-bearing queries land in the template tier:
		// one skeleton planning run, then template hits.
		"csqp_template_cache_hits_total 1",
		"csqp_template_cache_misses_total 1",
		"csqp_template_hit_ratio 0.5",
		"csqp_plan_cache_hits_total 0",
		"csqp_plan_cache_hit_ratio 0",
		"csqp_plans_total 1",
		`csqp_source_attempts_total{source="books"}`,
		`csqp_source_query_seconds_count{source="books"}`,
		"csqp_check_calls_total",
		"csqp_planning_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	// The exported counters must agree with the legacy stats structs.
	st := sys.TemplateStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("TemplateStats = %+v, want 1 hit / 1 miss", st)
	}
	if sys.Metrics() == nil {
		t.Fatal("Metrics() registry missing")
	}
}

func TestQueryCachedMetricsFlag(t *testing.T) {
	sys := demoSystem(t)
	sys.EnableCache()
	cond := `author = "Carl Jung"`
	res1, err := sys.Query("books", cond, "isbn")
	if err != nil {
		t.Fatal(err)
	}
	if res1.Metrics == nil || res1.Metrics.Cached {
		t.Fatalf("first query Metrics = %+v, want uncached", res1.Metrics)
	}
	res2, err := sys.Query("books", cond, "isbn")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics == nil || !res2.Metrics.Cached {
		t.Fatalf("second query Metrics = %+v, want Cached", res2.Metrics)
	}
}
