package csqp

import (
	"context"

	"repro/internal/condition"
	"repro/internal/mediator"
)

// Join describes a two-source equi-join target query:
//
//	π_Attrs σ_LeftCond(Left) ⋈_{LeftAttr = RightAttr} σ_RightCond(Right)
//
// Selection queries are the building blocks (§1 of the paper); the join is
// executed by composing capability-sensitive selection plans — either a
// semijoin pushdown (the distinct left bindings become one disjunctive
// right-side target query, which GenCompact splits or batches per the
// source's capabilities) or a whole-side fetch, whichever the cost model
// prices cheaper among the feasible options. Conditions are surface-syntax
// strings; empty means `true`.
type Join struct {
	Left, Right         string
	LeftCond, RightCond string
	LeftAttr, RightAttr string
	Attrs               []string
	// MaxBindings caps the number of left-side values pushed into the
	// semijoin disjunction (0 = default 64).
	MaxBindings int
}

// JoinAnswer reports a completed join.
type JoinAnswer struct {
	// Answer is the join result.
	Answer *Relation
	// Strategy is "semijoin" or "whole-side".
	Strategy string
	// Probes is the number of right-source queries issued.
	Probes int
}

// QueryJoin plans and executes the join with the system's default
// strategy for each side's selection queries.
func (s *System) QueryJoin(q Join) (*JoinAnswer, error) {
	return s.QueryJoinContext(context.Background(), q)
}

// QueryJoinContext is QueryJoin under a caller-supplied context. Joins
// always fail closed — partial-answer degradation does not apply.
func (s *System) QueryJoinContext(ctx context.Context, q Join) (*JoinAnswer, error) {
	left, err := parseOrTrue(q.LeftCond)
	if err != nil {
		return nil, err
	}
	right, err := parseOrTrue(q.RightCond)
	if err != nil {
		return nil, err
	}
	p, err := s.strategy.planner()
	if err != nil {
		return nil, err
	}
	res, err := s.med.AnswerJoin(ctx, p, mediator.JoinSpec{
		Left: q.Left, Right: q.Right,
		LeftCond: left, RightCond: right,
		LeftAttr: q.LeftAttr, RightAttr: q.RightAttr,
		Attrs:       q.Attrs,
		MaxBindings: q.MaxBindings,
	})
	if err != nil {
		return nil, err
	}
	return &JoinAnswer{Answer: res.Relation, Strategy: res.Strategy, Probes: res.Probes}, nil
}

func parseOrTrue(src string) (Condition, error) {
	if src == "" {
		return condition.True(), nil
	}
	return condition.Parse(src)
}
