package csqp

import (
	"testing"

	"repro/internal/condition"
)

func TestParseSelectBasics(t *testing.T) {
	sel, err := ParseSelect(`SELECT title, isbn FROM books WHERE author = "Carl Jung" ^ title contains "dreams"`)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Source != "books" {
		t.Errorf("source = %q", sel.Source)
	}
	if len(sel.Attrs) != 2 || sel.Attrs[0] != "title" || sel.Attrs[1] != "isbn" {
		t.Errorf("attrs = %v", sel.Attrs)
	}
	if condition.Size(sel.Cond) != 2 {
		t.Errorf("cond = %s", sel.Cond.Key())
	}
}

func TestParseSelectNoWhere(t *testing.T) {
	sel, err := ParseSelect(`select isbn from books`)
	if err != nil {
		t.Fatal(err)
	}
	if !condition.IsTrue(sel.Cond) {
		t.Errorf("cond = %s, want true", sel.Cond.Key())
	}
}

func TestParseSelectStar(t *testing.T) {
	sel, err := ParseSelect(`SELECT * FROM books WHERE author = "X"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Attrs) != 1 || sel.Attrs[0] != "*" {
		t.Errorf("attrs = %v", sel.Attrs)
	}
}

func TestParseSelectKeywordsInStrings(t *testing.T) {
	// FROM/WHERE inside string literals must not split clauses.
	sel, err := ParseSelect(`SELECT isbn FROM books WHERE title contains "where we are from"`)
	if err != nil {
		t.Fatal(err)
	}
	a := sel.Cond.(*condition.Atomic)
	if a.Val.S != "where we are from" {
		t.Errorf("value = %q", a.Val.S)
	}
}

func TestParseSelectErrors(t *testing.T) {
	bad := []string{
		``,
		`INSERT INTO x`,
		`SELECT FROM books`,
		`SELECT a b FROM books`,
		`SELECT a, * FROM books`,
		`SELECT a FROM`,
		`SELECT a FROM two words`,
		`SELECT a FROM books WHERE bad =`,
		`selector a from b`, // keyword must end at a word boundary
	}
	for _, stmt := range bad {
		if _, err := ParseSelect(stmt); err == nil {
			t.Errorf("ParseSelect(%q) should fail", stmt)
		}
	}
}

func TestQuerySQLEndToEnd(t *testing.T) {
	sys := demoSystem(t)
	res, err := sys.QuerySQL(`SELECT title, isbn FROM books WHERE (author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Len() != 11 {
		t.Errorf("rows = %d, want 11", res.Answer.Len())
	}
	if len(res.SourceQueries) != 2 {
		t.Errorf("source queries = %d, want 2", len(res.SourceQueries))
	}
}

func TestQuerySQLStarExpandsSchema(t *testing.T) {
	sys := demoSystem(t)
	res, err := sys.QuerySQL(`SELECT * FROM books WHERE author = "Carl Jung"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Schema().Len() != 4 { // author, title, isbn, price
		t.Errorf("schema = %v", res.Answer.Schema())
	}
}

func TestQuerySQLErrors(t *testing.T) {
	sys := demoSystem(t)
	if _, err := sys.QuerySQL(`SELECT x FROM ghost`); err == nil {
		t.Error("unknown source should fail")
	}
	if _, err := sys.QuerySQL(`nonsense`); err == nil {
		t.Error("bad statement should fail")
	}
}
