// Httpmediator runs the full network path the paper assumes: two
// capability-limited sources served over real HTTP (publishing their SSDL
// descriptions and statistics), and a mediator that discovers them, plans
// capability-sensitive queries, and answers over the wire.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"repro"
	"repro/internal/source"
	"repro/internal/workload"
)

func main() {
	// Spin up two "Internet" sources in-process. Everything past this
	// block speaks plain HTTP to them.
	bookRel, bookG := workload.Bookstore(20000, 1)
	books, err := source.NewLocal("", bookRel, bookG)
	if err != nil {
		log.Fatal(err)
	}
	bookSrv := httptest.NewServer(source.NewHandler(books))
	defer bookSrv.Close()

	carRel, carG := workload.Cars(10000, 1)
	cars, err := source.NewLocal("", carRel, carG)
	if err != nil {
		log.Fatal(err)
	}
	carSrv := httptest.NewServer(source.NewHandler(cars))
	defer carSrv.Close()

	fmt.Println("sources online:")
	fmt.Println("  books @", bookSrv.URL)
	fmt.Println("  autos @", carSrv.URL)

	// The mediator discovers each source's capabilities and statistics
	// from the source itself.
	sys := csqp.NewSystem()
	for _, url := range []string{bookSrv.URL, carSrv.URL} {
		name, err := sys.AddHTTPSource(url)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered %q from its published SSDL description\n", name)
	}

	fmt.Println("\n-- query 1: the bookstore example, over HTTP --")
	res, err := sys.Query("books", workload.Example11Condition, workload.Example11Attrs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d source queries over the wire, %d answers\n",
		len(res.SourceQueries), res.Answer.Len())
	fmt.Printf("source accounting: %+v\n", books.Accounting())

	fmt.Println("\n-- query 2: the car form example, over HTTP --")
	res, err = sys.Query("autos", workload.Example12Condition, workload.Example12Attrs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d form submissions over the wire, %d matches\n",
		len(res.SourceQueries), res.Answer.Len())
	fmt.Printf("source accounting: %+v\n", cars.Accounting())

	// Unsupported queries are refused by the source itself with an HTTP
	// 422 — the mediator never even plans them because the published
	// grammar rules them out.
	fmt.Println("\n-- query 3: an unanswerable query --")
	if _, err := sys.Query("books", `price < 10`, "title"); err != nil {
		fmt.Println("mediator correctly reports:", err)
	}
}
