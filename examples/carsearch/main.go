// Carsearch walks through Example 1.2 of the paper: a car-shopping form
// with single-value style/make/price fields and a multi-value size field.
// The target condition mixes disjunctions two levels deep; the
// capability-sensitive planner splits it into exactly two form
// submissions, where DNF needs four and CNF drags in every sedan of the
// right size.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	const size = 20000
	rel, grammar := workload.Cars(size, 1)
	fmt.Printf("listings: %d cars\n", rel.Len())
	fmt.Println("\ntarget query (Example 1.2):")
	fmt.Println(" ", workload.Example12Condition)
	fmt.Println()

	sys := csqp.NewSystem()
	if err := sys.AddSourceGrammar(rel, grammar); err != nil {
		log.Fatal(err)
	}

	for _, s := range []csqp.Strategy{csqp.GenCompact, csqp.DNF, csqp.CNF, csqp.Disco} {
		res, err := sys.QueryWith(s, "autos", workload.Example12Condition, workload.Example12Attrs...)
		if err != nil {
			if errors.Is(err, csqp.ErrInfeasible) {
				fmt.Printf("%-11s infeasible\n", s)
				continue
			}
			log.Fatal(err)
		}
		fmt.Printf("%-11s %d form submissions, ~%.0f listings extracted, %d matches\n",
			s, len(res.SourceQueries), res.EstimatedTransfer, res.Answer.Len())
	}

	// Show the winning plan: two submissions, one per make/price branch,
	// each carrying the size value-list.
	res, err := sys.Query("autos", workload.Example12Condition, workload.Example12Attrs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGenCompact plan:")
	fmt.Print(csqp.FormatPlan(res.Plan))

	fmt.Println("\nfirst matches:")
	res.Answer.Sort("price")
	for i, t := range res.Answer.Tuples() {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", res.Answer.Len()-5)
			break
		}
		mk, _ := t.Lookup("make")
		model, _ := t.Lookup("model")
		price, _ := t.Lookup("price")
		fmt.Printf("  %-8s %-14s $%d\n", mk.S, model.S, price.I)
	}
}
