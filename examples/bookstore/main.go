// Bookstore walks through Example 1.1 of the paper: searching an online
// bookstore for books on dreams by Freud or Jung, against a form that
// cannot search two authors at once. It compares the plan every strategy
// generates and the data each one extracts — reproducing the paper's
// ">2,000 entries vs fewer than 20" contrast.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	const size = 100000
	rel, grammar := workload.Bookstore(size, 1)
	fmt.Printf("catalog: %d books\n", rel.Len())
	fmt.Println("form capabilities (SSDL):")
	fmt.Print(indent(grammar.String()))

	sys := csqp.NewSystem()
	if err := sys.AddSourceGrammar(rel, grammar); err != nil {
		log.Fatal(err)
	}

	query := workload.Example11Condition
	fmt.Println("\ntarget query:", query)
	fmt.Println()

	for _, s := range []csqp.Strategy{csqp.GenCompact, csqp.CNF, csqp.DNF, csqp.Disco, csqp.Naive} {
		res, err := sys.QueryWith(s, "books", query, workload.Example11Attrs...)
		if err != nil {
			if errors.Is(err, csqp.ErrInfeasible) {
				fmt.Printf("%-11s infeasible — the source cannot run any plan this strategy considers\n", s)
				continue
			}
			log.Fatal(err)
		}
		fmt.Printf("%-11s %d source queries, ~%.0f entries extracted, %d answers\n",
			s, len(res.SourceQueries), res.EstimatedTransfer, res.Answer.Len())
		if s == csqp.GenCompact {
			fmt.Print(indent(csqp.FormatPlan(res.Plan)))
		}
	}

	fmt.Println("\nThe CNF (Garlic) strategy pushes only the title clause and drags in")
	fmt.Println("every book matching \"dreams\"; the capability-sensitive two-query")
	fmt.Println("plan extracts only the handful of matching Freud and Jung books.")
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "    " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
