// Federation demonstrates multi-source mediation over partitioned and
// replicated sources: regional listing partitions that must all contribute
// to an answer, and mirrored sources where the mediator picks the cheapest
// capable one. It also shows the plan cache and the SQL-ish front end.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/condition"
)

func regionListings(region string, startID int) *csqp.Relation {
	schema, err := csqp.NewSchema(
		csqp.Column{Name: "make", Kind: condition.KindString},
		csqp.Column{Name: "model", Kind: condition.KindString},
		csqp.Column{Name: "price", Kind: condition.KindInt},
	)
	if err != nil {
		log.Fatal(err)
	}
	rel := csqp.NewRelation(schema)
	makes := []string{"BMW", "Toyota", "Honda"}
	for i := 0; i < 9; i++ {
		mk := makes[i%3]
		if err := rel.AppendValues(
			csqp.String(mk),
			csqp.String(fmt.Sprintf("%s-%s-%02d", mk, region, startID+i)),
			csqp.Int(int64(12000+i*4000)),
		); err != nil {
			log.Fatal(err)
		}
	}
	return rel
}

func main() {
	sys := csqp.NewSystem()
	sys.EnableCache()

	// Two regional partitions with different form capabilities: the west
	// form takes only a make, the east form also takes a price bound.
	if err := sys.AddSource(regionListings("west", 0), `
source west
attrs make, model, price
key model
s1 -> make = $m:string
attributes :: s1 : {make, model, price}
`); err != nil {
		log.Fatal(err)
	}
	if err := sys.AddSource(regionListings("east", 100), `
source east
attrs make, model, price
key model
s1 -> make = $m:string
s2 -> make = $m:string ^ price <= $p:int
attributes :: s1 : {make, model, price}
attributes :: s2 : {make, model, price}
`); err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- partitioned union: BMWs under $25k across regions --")
	res, err := sys.QueryUnion([]string{"west", "east"}, `make = "BMW" ^ price <= 25000`, "model", "price")
	if err != nil {
		log.Fatal(err)
	}
	res.Answer.Sort("price")
	for _, t := range res.Answer.Tuples() {
		model, _ := t.Lookup("model")
		price, _ := t.Lookup("price")
		fmt.Printf("  %-16s $%d\n", model.S, price.I)
	}
	fmt.Printf("(%d source queries total; west filters price at the mediator, east pushes it)\n\n",
		len(res.SourceQueries))

	fmt.Println("-- replicated choice: the cheapest capable mirror answers --")
	res, chosen, err := sys.QueryCheapest([]string{"west", "east"}, `make = "Toyota" ^ price <= 20000`, "model")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  chose %q (%d rows) — its form pushes the price bound\n\n", chosen, res.Answer.Len())

	fmt.Println("-- SQL front end + plan cache --")
	for i := 0; i < 3; i++ {
		if _, err := sys.QuerySQL(`SELECT model FROM east WHERE make = "Honda"`); err != nil {
			log.Fatal(err)
		}
	}
	st := sys.CacheStats()
	fmt.Printf("  plan cache after 3 identical queries: %d hits, %d misses\n", st.Hits, st.Misses)
}
