// Quickstart: describe a capability-limited source in SSDL, load a few
// rows, and let the mediator plan and answer a query the source could
// never evaluate directly.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/condition"
)

// The source is Example 4.1 from the paper: a used-car site whose form
// accepts (make, max price) or (make, color) — nothing else.
const description = `
source R
attrs make, model, year, color, price
key model
s1 -> make = $m:string ^ price < $p:int
s2 -> make = $m:string ^ color = $c:string
attributes :: s1 : {make, model, year, color}
attributes :: s2 : {make, model, year}
`

func main() {
	schema, err := csqp.NewSchema(
		csqp.Column{Name: "make", Kind: condition.KindString},
		csqp.Column{Name: "model", Kind: condition.KindString},
		csqp.Column{Name: "year", Kind: condition.KindInt},
		csqp.Column{Name: "color", Kind: condition.KindString},
		csqp.Column{Name: "price", Kind: condition.KindInt},
	)
	if err != nil {
		log.Fatal(err)
	}
	rel := csqp.NewRelation(schema)
	rows := []struct {
		make, model string
		year        int64
		color       string
		price       int64
	}{
		{"BMW", "328i", 1998, "red", 35000},
		{"BMW", "528i", 1997, "black", 45000},
		{"BMW", "318i", 1996, "blue", 29000},
		{"Toyota", "Camry", 1998, "red", 19000},
	}
	for _, r := range rows {
		if err := rel.AppendValues(
			csqp.String(r.make), csqp.String(r.model), csqp.Int(r.year),
			csqp.String(r.color), csqp.Int(r.price)); err != nil {
			log.Fatal(err)
		}
	}

	sys := csqp.NewSystem()
	if err := sys.AddSource(rel, description); err != nil {
		log.Fatal(err)
	}

	// The target query conjoins a supported shape with a color
	// disjunction the form cannot express. The planner evaluates the
	// supported part at the source (widened to export color) and the
	// rest at the mediator.
	query := `make = "BMW" ^ price < 40000 ^ (color = "red" _ color = "black")`
	res, err := sys.Query("R", query, "model", "year")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("target query:", query)
	fmt.Println("\nplan:")
	fmt.Print(csqp.FormatPlan(res.Plan))
	fmt.Printf("\nsource queries: %d, plan cost: %.0f\n", len(res.SourceQueries), res.Cost)
	fmt.Println("\nanswer:")
	for _, t := range res.Answer.Tuples() {
		model, _ := t.Lookup("model")
		year, _ := t.Lookup("year")
		fmt.Printf("  %s (%d)\n", model.S, year.I)
	}
}
