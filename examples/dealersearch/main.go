// Dealersearch demonstrates multi-source mediation: a two-source
// equi-join composed from capability-sensitive selection plans. The paper
// notes that selection queries "form the building blocks of more complex
// queries"; this example joins a dealer directory (searchable by city)
// with the car-listing source (searchable by make and price) — the
// mediator probes the listing source once per brand sold in the city
// (a semijoin pushdown), each probe being a grammar-checked form
// submission.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/condition"
)

func main() {
	sys := csqp.NewSystem()

	// Source 1: a dealer directory, searchable only by city.
	dealerSchema, err := csqp.NewSchema(
		csqp.Column{Name: "dealer", Kind: condition.KindString},
		csqp.Column{Name: "city", Kind: condition.KindString},
		csqp.Column{Name: "brand", Kind: condition.KindString},
	)
	if err != nil {
		log.Fatal(err)
	}
	dealers := csqp.NewRelation(dealerSchema)
	for _, row := range [][3]string{
		{"Peninsula Motors", "Palo Alto", "BMW"},
		{"Bayshore Auto", "Palo Alto", "Toyota"},
		{"Camino Cars", "Palo Alto", "Honda"},
		{"South Bay Motors", "San Jose", "BMW"},
		{"Almaden Auto", "San Jose", "Ford"},
	} {
		if err := dealers.AppendValues(csqp.String(row[0]), csqp.String(row[1]), csqp.String(row[2])); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.AddSource(dealers, `
source dealers
attrs dealer, city, brand
key dealer
s1 -> city = $c:string
s2 -> brand = $b:string
attributes :: s1 : {dealer, city, brand}
attributes :: s2 : {dealer, city, brand}
`); err != nil {
		log.Fatal(err)
	}

	// Source 2: listings, searchable by make (optionally with a price
	// bound) — the web form from the paper's Example 4.1.
	carSchema, err := csqp.NewSchema(
		csqp.Column{Name: "make", Kind: condition.KindString},
		csqp.Column{Name: "model", Kind: condition.KindString},
		csqp.Column{Name: "price", Kind: condition.KindInt},
	)
	if err != nil {
		log.Fatal(err)
	}
	cars := csqp.NewRelation(carSchema)
	for _, row := range []struct {
		mk, model string
		price     int64
	}{
		{"BMW", "328i", 35000},
		{"BMW", "M5", 70000},
		{"Toyota", "Camry", 19000},
		{"Toyota", "Corolla", 14000},
		{"Honda", "Accord", 18000},
		{"Ford", "Focus", 15000},
	} {
		if err := cars.AppendValues(csqp.String(row.mk), csqp.String(row.model), csqp.Int(row.price)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.AddSource(cars, `
source cars
attrs make, model, price
key model
s1 -> make = $m:string
s2 -> make = $m:string ^ price < $p:int
attributes :: s1 : {make, model, price}
attributes :: s2 : {make, model, price}
`); err != nil {
		log.Fatal(err)
	}

	// "Which cars under $40k can I buy from a Palo Alto dealer, and
	// from whom?"
	res, err := sys.QueryJoin(csqp.Join{
		Left:      "dealers",
		Right:     "cars",
		LeftCond:  `city = "Palo Alto"`,
		RightCond: `price < 40000`,
		LeftAttr:  "brand",
		RightAttr: "make",
		Attrs:     []string{"dealer", "model", "price"},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("strategy: %s (%d capability-checked probes of the listing source)\n\n",
		res.Strategy, res.Probes)
	res.Answer.Sort("price")
	for _, t := range res.Answer.Tuples() {
		dealer, _ := t.Lookup("dealer")
		model, _ := t.Lookup("model")
		price, _ := t.Lookup("price")
		fmt.Printf("  %-18s %-10s $%d\n", dealer.S, model.S, price.I)
	}
}
