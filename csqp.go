// Package csqp is the public API of this reproduction of
// "Capability-Sensitive Query Processing on Internet Sources"
// (Garcia-Molina, Labio, Yerneni; ICDE 1999).
//
// A System is a mediator over capability-limited sources. Each source is a
// relation guarded by an SSDL description — a context-free grammar stating
// exactly which condition expressions the source evaluates and which
// attributes each query shape exports. Target queries are select-project
// queries whose conditions may be arbitrary and/or trees; the mediator
// generates a capability-sensitive plan (GenCompact by default), fixes its
// source queries to an order the source's grammar accepts, executes it,
// and post-processes the results.
//
// Quick start:
//
//	sys := csqp.NewSystem()
//	_ = sys.AddSource(rel, grammarText)      // an in-memory source
//	res, _ := sys.Query("books",
//	    `(author = "Freud" or author = "Jung") and title contains "dreams"`,
//	    "title", "isbn")
//	fmt.Println(res.Answer.Len(), "rows via", len(res.SourceQueries), "source queries")
package csqp

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/genmodular"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/source"
	"repro/internal/ssdl"
)

// Re-exported substrate types, so callers can build relations and inspect
// plans without importing internal packages.
type (
	// Relation is an in-memory relation (schema + tuples).
	Relation = relation.Relation
	// Schema describes a relation's typed attributes.
	Schema = relation.Schema
	// Column is one attribute of a Schema.
	Column = relation.Column
	// Tuple is one row of a Relation.
	Tuple = relation.Tuple
	// Value is a typed constant (string, int, float, bool).
	Value = condition.Value
	// Condition is a condition tree over source attributes.
	Condition = condition.Node
	// Grammar is a parsed SSDL source description.
	Grammar = ssdl.Grammar
	// Plan is a mediator query plan.
	Plan = plan.Plan
	// Metrics reports what a planning run did.
	Metrics = planner.Metrics
	// Querier is the source-query interface plans execute against;
	// implement it to register custom or remote sources.
	Querier = plan.Querier
	// PartialError annotates a degraded Union answer with the branches
	// that were dropped (see Options.PartialAnswers); detect it with
	// errors.As.
	PartialError = plan.PartialError
	// Tracer records the span tree of one traced query (see Trace).
	Tracer = obs.Tracer
	// MetricsRegistry is the system's telemetry registry; System.Metrics
	// exposes it and System.MetricsHandler serves it over HTTP.
	MetricsRegistry = obs.Registry
	// StreamingMode selects the execution engine (see Options.Streaming).
	StreamingMode = mediator.StreamingMode
	// ExecProfile is the per-operator runtime statistics tree of one
	// executed query (see Result.Profile and ExplainAnalyze).
	ExecProfile = plan.ExecProfile
	// QueryRecord is one entry of the system's flight recorder (see
	// Recent and Options.RecorderSize).
	QueryRecord = mediator.QueryRecord
)

// FormatProfile renders an execution profile as an indented tree, one
// operator per line with its row counts, timings and estimate ratios.
func FormatProfile(p *ExecProfile) string { return plan.FormatProfile(p) }

// Streaming-mode values for Options.Streaming.
const (
	// StreamingAuto (the default) uses the streaming engine unless the
	// CSQP_STREAMING environment variable disables it ("0", "off",
	// "false"); "1", "on", "true" force it on over StreamingOff.
	StreamingAuto = mediator.StreamingAuto
	// StreamingOn always uses the streaming iterator engine.
	StreamingOn = mediator.StreamingOn
	// StreamingOff always uses the materialized executor.
	StreamingOff = mediator.StreamingOff
)

// Trace returns a context that records query-lifecycle spans (rewrite →
// check → generate → cost → fix → execute, with per-source attempt spans)
// into the returned Tracer. Pass the context to QueryContext/QueryCond
// and render the result with Tracer.Tree. Contexts without a tracer take
// a zero-cost no-op path.
func Trace(ctx context.Context) (context.Context, *Tracer) {
	t := obs.NewTracer(0)
	return obs.WithTracer(ctx, t), t
}

// Value constructors.
var (
	// String builds a string Value.
	String = condition.String
	// Int builds an integer Value.
	Int = condition.Int
	// Float builds a float Value.
	Float = condition.Float
	// Bool builds a boolean Value.
	Bool = condition.Bool
)

// NewSchema builds a relation schema.
func NewSchema(cols ...Column) (*Schema, error) { return relation.NewSchema(cols...) }

// NewRelation builds an empty relation over the schema.
func NewRelation(s *Schema) *Relation { return relation.New(s) }

// ParseCondition parses a condition expression. Both the paper's notation
// (`^`, `_`) and conventional syntax (`and`, `or`, `&&`, `||`) are
// accepted.
func ParseCondition(src string) (Condition, error) { return condition.Parse(src) }

// ParseSSDL parses an SSDL source description.
func ParseSSDL(src string) (*Grammar, error) { return ssdl.Parse(src) }

// FormatPlan renders a plan as an indented tree.
func FormatPlan(p Plan) string { return plan.Format(p) }

// Strategy selects a plan-generation scheme.
type Strategy int

const (
	// GenCompact is the paper's efficient planner (§6), the default.
	GenCompact Strategy = iota
	// GenModular is the exhaustive reference planner (§5); exponential,
	// use only on small queries.
	GenModular
	// CNF is Garlic's clause-pushdown strategy.
	CNF
	// DNF is the term-per-query strategy.
	DNF
	// Disco is DISCO's all-or-nothing strategy.
	Disco
	// Naive pushes the whole query or fails.
	Naive
)

// ParseStrategy resolves a strategy by its case-insensitive name, as CLI
// flags and wire requests carry it.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(name) {
	case "gencompact", "":
		return GenCompact, nil
	case "genmodular":
		return GenModular, nil
	case "cnf":
		return CNF, nil
	case "dnf":
		return DNF, nil
	case "disco":
		return Disco, nil
	case "naive":
		return Naive, nil
	default:
		return 0, fmt.Errorf("csqp: unknown strategy %q", name)
	}
}

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case GenCompact:
		return "GenCompact"
	case GenModular:
		return "GenModular"
	case CNF:
		return "CNF"
	case DNF:
		return "DNF"
	case Disco:
		return "DISCO"
	case Naive:
		return "Naive"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

func (s Strategy) planner() (planner.Planner, error) {
	switch s {
	case GenCompact:
		return core.New(), nil
	case GenModular:
		return &genmodular.Planner{Rewrite: rewrite.Config{Rules: rewrite.AllRules, MaxCTs: 2000, MaxAtoms: 12}}, nil
	case CNF:
		return baseline.CNF{}, nil
	case DNF:
		return baseline.DNF{}, nil
	case Disco:
		return baseline.Disco{}, nil
	case Naive:
		return baseline.Naive{}, nil
	default:
		return nil, fmt.Errorf("csqp: unknown strategy %v", s)
	}
}

// ErrInfeasible is returned when no feasible plan exists for a query under
// the chosen strategy.
var ErrInfeasible = planner.ErrInfeasible

// Options configure a System.
type Options struct {
	// K1 is the per-source-query cost (default 10).
	K1 float64
	// K2 is the per-result-tuple cost (default 1).
	K2 float64
	// Strategy is the default planner (default GenCompact).
	Strategy Strategy
	// Workers bounds concurrent source queries during plan execution
	// (default 1 = sequential).
	Workers int
	// QueryTimeout bounds each source-query attempt (0 = no timeout).
	QueryTimeout time.Duration
	// QueryRetries re-attempts failed source queries with exponential
	// backoff (0 = no retries). Only transient transport failures are
	// retried; capability refusals never are.
	QueryRetries int
	// BreakerThreshold opens a per-source circuit breaker after this many
	// consecutive failures, fast-failing further queries for a cooldown
	// (0 = breaker disabled).
	BreakerThreshold int
	// Streaming selects the execution engine: StreamingAuto (default)
	// runs plans through the pull-based iterator engine — bounded chunks
	// flow through the operators instead of whole relations, so memory
	// tracks the answer's working set, not the sum of every node's input —
	// unless the CSQP_STREAMING environment variable turns it off.
	// StreamingOn and StreamingOff pin the choice. Answers are identical
	// either way; only the execution strategy differs.
	Streaming StreamingMode
	// PartialAnswers lets Union plans degrade when sources fail at
	// execution time: the surviving branches' answer is returned together
	// with a *PartialError. Union is monotone, so every returned tuple is
	// a true answer tuple.
	PartialAnswers bool
	// SourceCacheSize enables the per-source answer cache with this many
	// entries per source (0 = disabled): source-query results are
	// memoized by semantic key in a bounded LRU with TTL expiry, and N
	// concurrent identical source queries issue exactly one upstream
	// call. The cache sits outside the resilience layer, so a source
	// whose circuit breaker is fast-failing still serves its cached
	// answers until they expire. Errors and capability refusals are never
	// cached.
	SourceCacheSize int
	// SourceCacheTTL bounds the staleness of cached source answers
	// (0 = source.DefaultSourceCacheTTL, one minute). Only meaningful
	// with SourceCacheSize > 0.
	SourceCacheTTL time.Duration
	// SourceCacheRows caps the total tuples held per source cache
	// (0 = source.DefaultSourceCacheRows). Only meaningful with
	// SourceCacheSize > 0.
	SourceCacheRows int
	// Logger receives the system's structured event stream: partial-answer
	// degradations, breaker state transitions, retry decisions, swallowed
	// errors, and slow-query reports. Nil keeps events silent (the
	// default).
	Logger *slog.Logger
	// SlowQueryThreshold is the duration above which an executed query is
	// reported on the Logger with its plan fingerprint and profile summary
	// (0 = mediator.DefaultSlowQueryThreshold, 500ms; negative disables).
	SlowQueryThreshold time.Duration
	// RecorderSize bounds the flight recorder: the last N executed
	// queries' records — plan fingerprint, duration, row counts and
	// execution profile — kept in a ring for Recent (0 =
	// mediator.DefaultRecorderSize, 64).
	RecorderSize int
	// Metrics points the system at an existing telemetry registry instead
	// of creating its own, so many systems (a multi-tenant daemon's
	// per-tenant federations) export through one endpoint. Same-named
	// instruments aggregate across systems. Nil creates a fresh registry
	// (the default).
	Metrics *MetricsRegistry
}

// System is a mediator with its sources, estimator and cost model.
// Cardinality estimation is per source: local sources use exact counts,
// HTTP sources use the statistics they publish, and sources with neither
// fall back to textbook heuristics.
type System struct {
	med       *mediator.Mediator
	rels      map[string]*relation.Relation
	est       *cost.Registry
	strategy  Strategy
	res       source.ResilienceOptions
	resOn     bool
	srcCache  source.CacheOptions
	cacheOn   bool
	srcCaches []*source.Cached
	reg       *obs.Registry
}

// NewSystem builds an empty system. With no Options it uses the paper's
// linear cost model with k1=10, k2=1 and GenCompact planning.
func NewSystem(opts ...Options) *System {
	o := Options{K1: 10, K2: 1, Strategy: GenCompact}
	if len(opts) > 0 {
		if opts[0].K1 != 0 {
			o.K1 = opts[0].K1
		}
		if opts[0].K2 != 0 {
			o.K2 = opts[0].K2
		}
		o.Strategy = opts[0].Strategy
		o.Streaming = opts[0].Streaming
		o.Workers = opts[0].Workers
		o.QueryTimeout = opts[0].QueryTimeout
		o.QueryRetries = opts[0].QueryRetries
		o.BreakerThreshold = opts[0].BreakerThreshold
		o.PartialAnswers = opts[0].PartialAnswers
		o.SourceCacheSize = opts[0].SourceCacheSize
		o.SourceCacheTTL = opts[0].SourceCacheTTL
		o.SourceCacheRows = opts[0].SourceCacheRows
		o.Logger = opts[0].Logger
		o.SlowQueryThreshold = opts[0].SlowQueryThreshold
		o.RecorderSize = opts[0].RecorderSize
		o.Metrics = opts[0].Metrics
	}
	rels := make(map[string]*relation.Relation)
	est := cost.NewRegistry()
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	med := mediator.New(cost.Model{K1: o.K1, K2: o.K2, PerSource: make(map[string]cost.Coef), Est: est})
	med.Workers = o.Workers
	med.Streaming = o.Streaming
	med.AllowPartial = o.PartialAnswers
	med.SetObs(reg)
	med.SetLogger(o.Logger)
	med.SlowQueryThreshold = o.SlowQueryThreshold
	med.SetRecorderSize(o.RecorderSize)
	return &System{
		med:      med,
		rels:     rels,
		est:      est,
		strategy: o.Strategy,
		reg:      reg,
		res: source.ResilienceOptions{
			Timeout:          o.QueryTimeout,
			MaxRetries:       o.QueryRetries,
			BreakerThreshold: o.BreakerThreshold,
			Obs:              reg,
			Log:              o.Logger,
		},
		resOn: o.QueryTimeout > 0 || o.QueryRetries > 0 || o.BreakerThreshold > 0,
		srcCache: source.CacheOptions{
			MaxEntries: o.SourceCacheSize,
			TTL:        o.SourceCacheTTL,
			MaxRows:    o.SourceCacheRows,
			Obs:        reg,
		},
		cacheOn: o.SourceCacheSize > 0,
	}
}

// Metrics returns the system's telemetry registry: plan-cache and checker
// counters, per-source attempt/retry/failure counters, latency histograms
// and breaker-state gauges. Snapshot it directly or serve it via
// MetricsHandler.
func (s *System) Metrics() *MetricsRegistry { return s.reg }

// MetricsHandler returns an http.Handler exporting the system's metrics:
// GET /metrics in Prometheus text format, GET /metrics.json as a JSON
// snapshot.
func (s *System) MetricsHandler() http.Handler { return obs.NewHTTPHandler(s.reg) }

// harden wraps a querier in the system's resilience and caching layers
// when they are configured. The answer cache goes OUTSIDE the resilience
// wrapper (mediator → cache → breaker/retry → source), so cache hits skip
// the breaker entirely: a fast-failing source keeps serving the answers
// it gave before going down, until their TTL.
func (s *System) harden(name string, q Querier) Querier {
	if s.resOn {
		q = source.NewResilient(name, q, s.res)
	}
	if s.cacheOn {
		c := source.NewCached(name, q, s.srcCache)
		s.srcCaches = append(s.srcCaches, c)
		q = c
	}
	return q
}

// SetSourceCost overrides the cost constants for one source (the paper's
// k1 and k2 "depend on the source"): k1 is the per-query overhead, k2 the
// per-result-tuple cost. Bound/page-size annotations recorded at
// registration are preserved.
func (s *System) SetSourceCost(source string, k1, k2 float64) {
	c := s.med.Model().PerSource[source]
	c.K1, c.K2 = k1, k2
	s.med.Model().PerSource[source] = c
}

// noteBounds records a grammar's result bound and page size in the cost
// model, so planning sees that a bounded source returns at most Limit
// tuples and a paginated one pays its fixed overhead once per page.
func (s *System) noteBounds(name string, g *Grammar) {
	if g == nil || (g.Limit == 0 && g.PageSize == 0) {
		return
	}
	m := s.med.Model()
	c, ok := m.PerSource[name]
	if !ok {
		c = cost.Coef{K1: m.K1, K2: m.K2}
	}
	c.Limit, c.PageSize = g.Limit, g.PageSize
	m.PerSource[name] = c
}

// pageWrap drives a paginated source's cursor loop: when the grammar
// declares a page size and the querier can serve pages, queries run
// through source.Paged (page-at-a-time fetch, per-page retry, sound
// degradation on cursor loss) before the resilience/cache layers.
func (s *System) pageWrap(name string, q Querier, g *Grammar) Querier {
	if g == nil || g.PageSize <= 0 {
		return q
	}
	cq, ok := q.(source.CursorQuerier)
	if !ok {
		return q
	}
	return source.NewPaged(name, cq, source.PagedOptions{
		MaxRetries: s.res.MaxRetries,
		Obs:        s.reg,
		Log:        s.res.Log,
	})
}

// AddSource registers an in-memory source whose capabilities are described
// by the SSDL text. The source name comes from the description's `source`
// header.
func (s *System) AddSource(rel *Relation, ssdlText string) error {
	g, err := ssdl.Parse(ssdlText)
	if err != nil {
		return err
	}
	return s.AddSourceGrammar(rel, g)
}

// AddSourceGrammar registers an in-memory source with a parsed grammar.
func (s *System) AddSourceGrammar(rel *Relation, g *Grammar) error {
	src, err := source.NewLocal("", rel, g)
	if err != nil {
		return err
	}
	if err := s.med.Register(src.Name(), s.harden(src.Name(), s.pageWrap(src.Name(), src, g)), g); err != nil {
		return err
	}
	s.noteBounds(src.Name(), g)
	s.rels[src.Name()] = rel
	s.est.Set(src.Name(), cost.NewOracleEstimator(map[string]*relation.Relation{src.Name(): rel}))
	return nil
}

// AddQuerierSource registers a custom querier — a remote client, a
// wrapper, a fault-injecting test double — under the capabilities the
// SSDL text describes. The source name comes from the description's
// `source` header.
func (s *System) AddQuerierSource(q Querier, ssdlText string) (name string, err error) {
	g, err := ssdl.Parse(ssdlText)
	if err != nil {
		return "", err
	}
	if err := s.med.Register(g.Source, s.harden(g.Source, s.pageWrap(g.Source, q, g)), g); err != nil {
		return "", err
	}
	s.noteBounds(g.Source, g)
	return g.Source, nil
}

// AddHTTPSource registers a source served at the base URL by a
// source.Handler (or any server speaking the same protocol); the SSDL
// description is fetched from the source itself.
func (s *System) AddHTTPSource(baseURL string) (name string, err error) {
	return s.AddHTTPSourceWith(context.Background(), baseURL, nil)
}

// AddHTTPSourceWith is AddHTTPSource under a caller-supplied context
// (bounding the description/statistics fetch) and http.Client. Pass a
// pooled client shared across sources — a long-lived mediator creating a
// fresh connection pool per source or per query is how downstream
// connections get exhausted.
func (s *System) AddHTTPSourceWith(ctx context.Context, baseURL string, hc *http.Client) (name string, err error) {
	client := source.NewClient(baseURL, hc)
	g, err := client.Describe(ctx)
	if err != nil {
		return "", err
	}
	if err := s.med.Register(g.Source, s.harden(g.Source, s.pageWrap(g.Source, client, g)), g); err != nil {
		return "", err
	}
	s.noteBounds(g.Source, g)
	// Use the source's published statistics for cost estimation; fall
	// back silently to heuristics if the source does not publish any.
	if st, err := client.Stats(ctx); err == nil {
		s.est.Set(g.Source, cost.NewStatsEstimator(map[string]*relation.Stats{g.Source: st}))
	}
	return g.Source, nil
}

// Sources lists the registered source names.
func (s *System) Sources() []string { return s.med.SourceNames() }

// Result is a completed query.
type Result struct {
	// Answer is the target query's result.
	Answer *Relation
	// Plan is the executed (fixed) plan.
	Plan Plan
	// SourceQueries are the plan's source queries.
	SourceQueries []*plan.SourceQuery
	// Cost is the plan's model cost.
	Cost float64
	// EstimatedTransfer is the estimated total tuples the plan's source
	// queries extract.
	EstimatedTransfer float64
	// Metrics reports planner effort.
	Metrics *Metrics
	// Profile is the executed plan's per-operator runtime statistics,
	// annotated with the cost model's estimates (nil for results that
	// did not execute).
	Profile *ExecProfile
	// Duration is the query's total wall time (planning + execution).
	Duration time.Duration
}

// Query plans (with the system's default strategy) and executes the target
// query SP(cond, attrs, source), where cond is a condition expression in
// the surface syntax.
func (s *System) Query(src, cond string, attrs ...string) (*Result, error) {
	return s.QueryWith(s.strategy, src, cond, attrs...)
}

// QueryContext is Query under a caller-supplied context: its deadline and
// cancellation propagate to every source query the plan issues.
func (s *System) QueryContext(ctx context.Context, src, cond string, attrs ...string) (*Result, error) {
	c, err := condition.Parse(cond)
	if err != nil {
		return nil, err
	}
	return s.QueryCond(ctx, s.strategy, src, c, attrs)
}

// QueryWith is Query with an explicit strategy.
func (s *System) QueryWith(strategy Strategy, src, cond string, attrs ...string) (*Result, error) {
	c, err := condition.Parse(cond)
	if err != nil {
		return nil, err
	}
	return s.QueryCond(context.Background(), strategy, src, c, attrs)
}

// QueryCond is QueryWith over a pre-parsed condition and an explicit
// context. With Options.PartialAnswers set, a degraded Union answer
// returns BOTH a Result and a *PartialError — check errors.As before
// discarding the result.
func (s *System) QueryCond(ctx context.Context, strategy Strategy, src string, cond Condition, attrs []string) (*Result, error) {
	p, err := strategy.planner()
	if err != nil {
		return nil, err
	}
	res, err := s.med.Answer(ctx, p, src, cond, attrs)
	if res == nil {
		return nil, err
	}
	return s.wrapResult(res), err
}

// Explain plans the query without executing it and returns the fixed plan.
func (s *System) Explain(strategy Strategy, src, cond string, attrs ...string) (Plan, *Metrics, error) {
	return s.ExplainContext(context.Background(), strategy, src, cond, attrs...)
}

// ExplainContext is Explain under a caller-supplied context; a Trace
// context records the planning span tree.
func (s *System) ExplainContext(ctx context.Context, strategy Strategy, src, cond string, attrs ...string) (Plan, *Metrics, error) {
	c, err := condition.Parse(cond)
	if err != nil {
		return nil, nil, err
	}
	p, err := strategy.planner()
	if err != nil {
		return nil, nil, err
	}
	return s.med.Plan(ctx, p, src, c, attrs)
}

// Cost prices an arbitrary plan under the system's model.
func (s *System) Cost(p Plan) float64 { return s.med.Model().PlanCost(p) }

// AnnotatePlan renders the plan with per-node cost and cardinality
// annotations from the system's model.
func (s *System) AnnotatePlan(p Plan) string { return cost.Explain(p, s.med.Model()) }

// EnableCache turns on mediator plan caching. Two tiers are enabled:
// parameterized plan templates — queries differing only in constants
// share one cached plan, planned once for the shape's skeleton and served
// by binding each query's constants back in — and an exact per-condition
// cache for queries templates cannot serve (no liftable constants, or
// constants pinned by the source grammar). Both tiers are bounded LRUs
// with request coalescing — N concurrent identical queries plan once.
func (s *System) EnableCache() { s.med.EnableCache() }

// SharedPlanCaches is a plan + template cache pool shared by several
// systems, each under its own partition (see NewSharedPlanCaches and
// EnableSharedCache).
type SharedPlanCaches = mediator.SharedPlanCaches

// NewSharedPlanCaches builds a cache pool for EnableSharedCache: one
// bounded plan cache and one template cache (capacity each; 0 = default
// 512) whose LRU budget every participating system draws from.
func NewSharedPlanCaches(capacity int) *SharedPlanCaches {
	return mediator.NewSharedPlanCaches(capacity)
}

// EnableSharedCache turns on plan caching backed by a shared pool instead
// of private caches: entries are keyed under the partition (typically a
// tenant name), so systems never see each other's plans, while the
// memory budget and singleflight machinery are shared. Call before
// serving queries; a multi-tenant daemon calls this once per tenant
// system with one pool.
func (s *System) EnableSharedCache(shared *SharedPlanCaches, partition string) {
	s.med.EnableSharedCache(shared, partition)
}

// CacheStats reports plan-cache activity: hits, misses, LRU evictions and
// coalesced waits (zeros when disabled).
type CacheStats = mediator.CacheStats

// CacheStats reports plan-cache activity (zeros when disabled).
func (s *System) CacheStats() CacheStats { return s.med.CacheStats() }

// TemplateStats reports plan-template cache activity: hits (queries
// served by binding constants into a cached template), misses, fallbacks
// to full planning, infeasible skeletons, evictions and coalesced waits
// (see EnableCache; zeros when disabled).
type TemplateStats = mediator.TemplateStats

// TemplateStats reports plan-template cache activity (zeros when
// disabled).
func (s *System) TemplateStats() TemplateStats { return s.med.TemplateStats() }

// SourceCacheStats reports source-answer-cache activity: hits, misses,
// evictions, TTL expirations, coalesced waits and current contents (see
// Options.SourceCacheSize; zeros when disabled).
type SourceCacheStats = source.CacheStats

// SourceCacheStats aggregates the per-source answer caches' counters
// (zeros when the cache is disabled). Per-source breakdowns are exported
// on the metrics registry under csqp_source_cache_* names.
func (s *System) SourceCacheStats() SourceCacheStats {
	var sum SourceCacheStats
	for _, c := range s.srcCaches {
		st := c.Stats()
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Evictions += st.Evictions
		sum.Expirations += st.Expirations
		sum.CoalescedWaits += st.CoalescedWaits
		sum.Entries += st.Entries
		sum.Rows += st.Rows
	}
	return sum
}

// QueryUnion answers the query over the union of the named partitioned
// sources (all must share the queried attributes, and all must be able to
// answer). With Options.PartialAnswers set, partitions whose sources fail
// at execution time are dropped and reported via a *PartialError returned
// alongside the surviving partitions' Result.
func (s *System) QueryUnion(sources []string, cond string, attrs ...string) (*Result, error) {
	return s.QueryUnionContext(context.Background(), sources, cond, attrs...)
}

// QueryUnionContext is QueryUnion under a caller-supplied context.
func (s *System) QueryUnionContext(ctx context.Context, sources []string, cond string, attrs ...string) (*Result, error) {
	c, err := condition.Parse(cond)
	if err != nil {
		return nil, err
	}
	p, err := s.strategy.planner()
	if err != nil {
		return nil, err
	}
	res, err := s.med.AnswerUnion(ctx, p, sources, c, attrs)
	if res == nil {
		return nil, err
	}
	return s.wrapResult(res), err
}

// QueryCheapest answers the query from whichever of the named replicated
// sources has the cheapest feasible plan, returning the chosen name.
func (s *System) QueryCheapest(sources []string, cond string, attrs ...string) (*Result, string, error) {
	return s.QueryCheapestContext(context.Background(), sources, cond, attrs...)
}

// QueryCheapestContext is QueryCheapest under a caller-supplied context.
func (s *System) QueryCheapestContext(ctx context.Context, sources []string, cond string, attrs ...string) (*Result, string, error) {
	c, err := condition.Parse(cond)
	if err != nil {
		return nil, "", err
	}
	p, err := s.strategy.planner()
	if err != nil {
		return nil, "", err
	}
	res, chosen, err := s.med.AnswerCheapest(ctx, p, sources, c, attrs)
	if res == nil {
		return nil, "", err
	}
	return s.wrapResult(res), chosen, err
}

// wrapResult converts a mediator result to the facade form.
func (s *System) wrapResult(res *mediator.Result) *Result {
	qs := plan.SourceQueries(res.Plan)
	transfer := 0.0
	for _, q := range qs {
		transfer += s.est.ResultSize(q.Source, q.Cond)
	}
	return &Result{
		Answer:            res.Relation,
		Plan:              res.Plan,
		SourceQueries:     qs,
		Cost:              s.med.Model().PlanCost(res.Plan),
		EstimatedTransfer: transfer,
		Metrics:           res.Metrics,
		Profile:           res.Profile,
		Duration:          res.Duration,
	}
}
