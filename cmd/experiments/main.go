// Command experiments regenerates every table of the reproduction's
// evaluation (E1-E9, see DESIGN.md §4) and prints them, in the same spirit
// as the experimental study the paper defers to its extended version.
//
// Usage:
//
//	experiments [-quick] [-markdown] [-only E1,E4] [-seed N]
//
// -quick shrinks workload sizes for a fast smoke run; -markdown emits
// GitHub-flavored tables (the format EXPERIMENTS.md embeds).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "shrink workloads for a fast run")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	run := func(id string) bool { return len(wanted) == 0 || wanted[id] }

	type experiment struct {
		id string
		fn func() (*bench.Table, error)
	}
	bookSize, carSize := 100000, 20000
	qcfg := bench.QualityConfig{Seed: *seed}
	ccfg := bench.CostConfig{Seed: *seed}
	checkCfg := bench.CheckConfig{}
	crossCfg := bench.CrossoverConfig{Seed: *seed}
	if *quick {
		bookSize, carSize = 20000, 5000
		qcfg.Queries, qcfg.AtomCounts, qcfg.Rows = 5, []int{3, 5}, 500
		ccfg.Queries, ccfg.Sizes = 3, []int{2, 4, 6}
		checkCfg.Sizes, checkCfg.Repeats = []int{8, 32, 128}, 10
		crossCfg.Size = 5000
	}

	experiments := []experiment{
		{"E1", func() (*bench.Table, error) { return bench.E1Bookstore(bookSize, *seed) }},
		{"E2", func() (*bench.Table, error) { return bench.E2CarSearch(carSize, *seed) }},
		{"E3", func() (*bench.Table, error) { return bench.E3PlanQuality(qcfg) }},
		{"E4", func() (*bench.Table, error) { return bench.E4PlanningCost(ccfg) }},
		{"E5", func() (*bench.Table, error) { return bench.E5PruningAblation(ccfg) }},
		{"E6", func() (*bench.Table, error) { return bench.E6Feasibility(qcfg) }},
		{"E7", func() (*bench.Table, error) { return bench.E7CheckLinear(checkCfg) }},
		{"E8", func() (*bench.Table, error) { return bench.E8Crossover(crossCfg) }},
		{"E9", func() (*bench.Table, error) { return bench.E9Joins(*seed) }},
	}

	failed := false
	for _, e := range experiments {
		if !run(e.id) {
			continue
		}
		start := time.Now()
		tab, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			failed = true
			continue
		}
		if *markdown {
			fmt.Println(tab.Markdown())
		} else {
			fmt.Println(tab.Render())
		}
		fmt.Printf("(%s completed in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
