// Command qa soaks the differential/metamorphic correctness harness
// outside the Go test runner: it walks seeds continuously, runs the
// selected checks on each generated instance, and prints a minimized
// repro for every failure. Unlike `go test -fuzz`, it needs no build
// cache or corpus directory, so it suits long background soaks and
// machines where only the built binary ships.
//
//	qa -duration 10m                 # soak all checks for 10 minutes
//	qa -seeds 5000 -check diff       # first 5000 seeds, differential only
//	qa -start 132 -seeds 1           # replay one seed
//
// Exit status: 0 if every instance passed (inconclusive counts as a
// pass — see the truncation note in internal/qa), 1 if any check
// failed, 2 on usage or harness errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/qa"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		start    = flag.Int64("start", 1, "first seed")
		seeds    = flag.Int64("seeds", 0, "number of seeds to run (0 = unbounded, stop on -duration or interrupt)")
		duration = flag.Duration("duration", 0, "wall-clock budget (0 = unbounded)")
		check    = flag.String("check", "all", "checks to run: diff, meta, fault, or all")
		verbose  = flag.Bool("v", false, "log every seed, not only failures")
	)
	flag.Parse()

	type namedCheck struct {
		name string
		fn   func(context.Context, *qa.Instance) (*qa.Report, error)
	}
	var checks []namedCheck
	switch *check {
	case "diff":
		checks = []namedCheck{{"differential", qa.Differential}}
	case "meta":
		checks = []namedCheck{{"metamorphic", qa.Metamorphic}}
	case "fault":
		checks = []namedCheck{{"fault-tolerance", qa.FaultTolerance}}
	case "all":
		checks = []namedCheck{
			{"differential", qa.Differential},
			{"metamorphic", qa.Metamorphic},
			{"fault-tolerance", qa.FaultTolerance},
		}
	default:
		fmt.Fprintf(os.Stderr, "qa: unknown -check %q (want diff, meta, fault or all)\n", *check)
		return 2
	}
	if *seeds == 0 && *duration == 0 {
		// Unbounded soak until interrupted; make that explicit up front.
		fmt.Fprintln(os.Stderr, "qa: no -seeds or -duration bound; soaking until interrupted")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	began := time.Now()
	var ran, failures, inconclusive int64
	for seed := *start; *seeds == 0 || seed < *start+*seeds; seed++ {
		if ctx.Err() != nil {
			break
		}
		inst := qa.Generate(seed)
		for _, c := range checks {
			// Checks get a fresh context so an expiring soak budget is
			// not mistaken for a harness failure mid-check.
			rep, err := c.fn(context.Background(), inst)
			if err != nil {
				fmt.Fprintf(os.Stderr, "qa: seed %d: %s harness error: %v\n%s", seed, c.name, err, inst.Repro())
				return 2
			}
			switch {
			case rep.Failed():
				failures++
				small := qa.Shrink(inst, func(cand *qa.Instance) bool {
					r, err := c.fn(context.Background(), cand)
					return err == nil && r.Failed()
				})
				fmt.Printf("FAIL seed=%d check=%s\n%s\nminimized repro:\n%s\n", seed, c.name, rep, small.Repro())
			case len(rep.Inconclusive) > 0:
				inconclusive++
				if *verbose {
					fmt.Printf("INCONCLUSIVE seed=%d check=%s: %s\n", seed, c.name, rep)
				}
			case *verbose:
				fmt.Printf("ok seed=%d check=%s\n", seed, c.name)
			}
		}
		ran++
	}

	elapsed := time.Since(began)
	rate := float64(ran) / elapsed.Seconds()
	fmt.Printf("qa: %d seeds in %s (%.1f instances/sec): %d failed, %d inconclusive\n",
		ran, elapsed.Round(time.Millisecond), rate, failures, inconclusive)
	if failures > 0 {
		return 1
	}
	return 0
}
