// Command csqpd is the long-lived multi-tenant mediator daemon: an
// HTTP/JSON service hosting many named federations over shared
// infrastructure — pooled source connections, shared-capacity plan and
// template caches partitioned per tenant, one telemetry registry — with
// admission control, load shedding (429 + Retry-After past the
// in-flight and queue bounds) and graceful drain on SIGTERM.
//
// Usage:
//
//	csqpd -addr :8443
//	csqpd -addr :8443 -max-inflight 32 -max-queue 64 -queue-timeout 500ms
//
// API:
//
//	POST /v1/tenants/{t}/sources   register a source: {"base_url": "http://host:port"}
//	                               or inline {"ssdl": "...", "data_tsv": "..."}
//	GET  /v1/tenants/{t}/sources   list the tenant's sources
//	POST /v1/tenants/{t}/query     {"source","cond","attrs",["strategy","deadline_ms","profile","trace"]}
//	GET  /v1/tenants/{t}/recent    the tenant's flight-recorder records
//	GET  /v1/tenants               tenant listing
//	GET  /healthz, /readyz         liveness / readiness (503 while draining)
//	GET  /metrics, /metrics.json   telemetry registry (Prometheus text / JSON)
//	GET  /debug/pprof/             Go runtime profiler
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/daemon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "csqpd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8443", "listen address")
	maxInFlight := flag.Int("max-inflight", daemon.DefaultMaxInFlight, "max concurrently executing queries")
	maxQueue := flag.Int("max-queue", daemon.DefaultMaxQueue, "max queries queued for a slot (negative = no queue)")
	queueTimeout := flag.Duration("queue-timeout", daemon.DefaultQueueTimeout, "max time a query may wait queued")
	queryDeadline := flag.Duration("query-deadline", daemon.DefaultQueryDeadline, "default per-query deadline (requests may set a shorter one)")
	drainTimeout := flag.Duration("drain-timeout", daemon.DefaultDrainTimeout, "max time to finish in-flight queries on shutdown")
	cacheSize := flag.Int("cache-size", 0, "shared plan/template cache pool entries (0 = default 512)")
	srcCache := flag.Int("source-cache", 0, "memoized source answers per source per tenant (0 = disabled)")
	srcCacheTTL := flag.Duration("source-cache-ttl", 0, "staleness bound for cached source answers (0 = 1m default)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-source-query attempt timeout (0 = none)")
	retries := flag.Int("retries", 1, "retries per failed source query (transport errors only)")
	breaker := flag.Int("breaker", 0, "circuit-breaker failure threshold per source (0 = disabled)")
	partial := flag.Bool("partial", false, "degrade Union plans to the branches that succeed")
	verbose := flag.Bool("v", false, "log at info level instead of warn")
	flag.Parse()

	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	d := daemon.New(daemon.Options{
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		QueueTimeout:     *queueTimeout,
		QueryDeadline:    *queryDeadline,
		CacheSize:        *cacheSize,
		SourceCacheSize:  *srcCache,
		SourceCacheTTL:   *srcCacheTTL,
		QueryTimeout:     *timeout,
		QueryRetries:     *retries,
		BreakerThreshold: *breaker,
		PartialAnswers:   *partial,
		Logger:           log,
	})
	defer d.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return daemon.Serve(ctx, daemon.ServeOptions{
		Addr:         *addr,
		Handler:      d.Handler(),
		DrainTimeout: *drainTimeout,
		Pprof:        true,
		OnDrain:      d.BeginDrain,
		OnListen: func(a net.Addr) {
			fmt.Printf("csqpd: listening at %s (max in-flight %d, queue %d, queue timeout %s)\n",
				a, *maxInFlight, *maxQueue, *queueTimeout)
		},
		Logger: log,
	})
}
