// Command loadgen drives a running csqpd with an open-loop query load
// and reports latency percentiles and the shed rate. Open-loop means
// arrivals follow the configured rate regardless of completions — the
// only arrival process that actually reveals overload behaviour: a
// closed loop slows its own offered load down exactly when the server
// struggles, hiding the queueing collapse the daemon's admission control
// exists to bound.
//
// Usage:
//
//	loadgen -daemon http://localhost:8443 -tenant bench \
//	        -source cars -cond 'make = "BMW" ^ price < 40000' -attrs model \
//	        -rate 200 -duration 10s
//
// Exit status is 0 when every request either succeeded or was shed
// cleanly (429); any other outcome (5xx, transport error, bad body) is
// an error and exits 1.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type result struct {
	latency time.Duration
	status  int
	err     error
}

func run() error {
	daemonURL := flag.String("daemon", "http://localhost:8443", "csqpd base URL")
	tenant := flag.String("tenant", "bench", "tenant to drive")
	srcName := flag.String("source", "", "source name for the query")
	cond := flag.String("cond", "", "target-query condition")
	attrsFlag := flag.String("attrs", "", "comma-separated requested attributes")
	strategy := flag.String("strategy", "", "planning strategy (empty = daemon default)")
	rate := flag.Float64("rate", 100, "offered load in queries per second (open loop)")
	duration := flag.Duration("duration", 10*time.Second, "how long to offer load")
	deadlineMS := flag.Int("deadline-ms", 0, "per-query deadline sent to the daemon (0 = daemon default)")
	maxErrors := flag.Int("max-errors", 0, "tolerated hard errors before exit 1")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	if *srcName == "" || *cond == "" || *attrsFlag == "" {
		return fmt.Errorf("missing -source, -cond or -attrs")
	}
	if *rate <= 0 {
		return fmt.Errorf("-rate must be positive")
	}
	var attrs []string
	for _, a := range strings.Split(*attrsFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			attrs = append(attrs, a)
		}
	}
	body, err := json.Marshal(map[string]any{
		"source": *srcName, "cond": *cond, "attrs": attrs,
		"strategy": *strategy, "deadline_ms": *deadlineMS,
	})
	if err != nil {
		return err
	}
	url := strings.TrimRight(*daemonURL, "/") + "/v1/tenants/" + *tenant + "/query"

	// One shared transport with generous per-host connection reuse: the
	// generator must not bottleneck on its own dialing.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = 256
	hc := &http.Client{Transport: tr}

	interval := time.Duration(float64(time.Second) / *rate)
	total := int(float64(*duration) / float64(interval))
	results := make(chan result, total)
	var wg sync.WaitGroup

	fmt.Fprintf(os.Stderr, "loadgen: offering %.0f q/s for %s (%d requests) at %s\n",
		*rate, *duration, total, url)
	ticker := time.NewTicker(interval)
	start := time.Now()
	for i := 0; i < total; i++ {
		<-ticker.C
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
			r := result{latency: time.Since(t0)}
			if err != nil {
				r.err = err
				results <- r
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			r.status = resp.StatusCode
			results <- r
		}()
	}
	ticker.Stop()
	wg.Wait()
	close(results)
	wall := time.Since(start)

	var ok, shed, hardErr int
	var latencies []time.Duration
	var firstErr error
	for r := range results {
		switch {
		case r.err != nil:
			hardErr++
			if firstErr == nil {
				firstErr = r.err
			}
		case r.status == http.StatusOK:
			ok++
			latencies = append(latencies, r.latency)
		case r.status == http.StatusTooManyRequests:
			shed++
		default:
			hardErr++
			if firstErr == nil {
				firstErr = fmt.Errorf("unexpected status %d", r.status)
			}
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })

	report := map[string]any{
		"offered":    total,
		"ok":         ok,
		"shed":       shed,
		"errors":     hardErr,
		"wall_ms":    wall.Milliseconds(),
		"throughput": float64(ok) / wall.Seconds(),
		"shed_rate":  rateOf(shed, total),
		"p50_ms":     pctMS(latencies, 0.50),
		"p90_ms":     pctMS(latencies, 0.90),
		"p99_ms":     pctMS(latencies, 0.99),
		"max_ms":     pctMS(latencies, 1.00),
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		fmt.Printf("offered %d in %s  ok %d  shed %d (%.1f%%)  errors %d\n",
			total, wall.Round(time.Millisecond), ok, shed, 100*rateOf(shed, total), hardErr)
		fmt.Printf("latency: p50 %.1fms  p90 %.1fms  p99 %.1fms  max %.1fms  throughput %.1f q/s\n",
			pctMS(latencies, 0.50), pctMS(latencies, 0.90), pctMS(latencies, 0.99),
			pctMS(latencies, 1.00), float64(ok)/wall.Seconds())
	}
	if hardErr > *maxErrors {
		return fmt.Errorf("%d hard errors (tolerated %d), first: %v", hardErr, *maxErrors, firstErr)
	}
	return nil
}

func rateOf(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// pctMS returns the p-th percentile of sorted latencies in milliseconds.
func pctMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Microseconds()) / 1000
}
