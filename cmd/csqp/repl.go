package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro"
	"repro/internal/obs"
)

// repl drives the interactive shell: SELECT statements run against the
// loaded sources, backslash commands inspect and configure the session.
type repl struct {
	sys      *csqp.System
	strategy csqp.Strategy
	out      io.Writer
	maxRows  int
}

func runREPL(sys *csqp.System, in io.Reader, out io.Writer) error {
	r := &repl{sys: sys, strategy: csqp.GenCompact, out: out, maxRows: 25}
	fmt.Fprintln(out, `csqp interactive shell — \help for commands, \q to quit`)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	r.prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q` || line == `\quit`:
			return nil
		case strings.HasPrefix(line, `\`):
			r.command(line)
		default:
			r.query(line)
		}
		r.prompt()
	}
	return sc.Err()
}

func (r *repl) prompt() { fmt.Fprint(r.out, "csqp> ") }

func (r *repl) command(line string) {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\help`, `\h`:
		fmt.Fprint(r.out, `commands:
  SELECT a, b FROM src WHERE <cond>   run a target query
  \sources                            list registered sources
  \strategy [name]                    show or set the planning strategy
  \explain <select statement>         show the plan, costs and fingerprint without executing
  \explain analyze <select statement> execute and show per-operator rows, timings and estimate errors
  \recent [n]                         show the flight recorder's last n queries (default all)
  \compare <select statement>         run every strategy and compare
  \trace <select statement>           run the query and print its span tree
  \cache                              show template, plan-cache and source-cache statistics
  \metrics                            dump the telemetry registry snapshot
  \help                               this text
  \q                                  quit
`)
	case `\sources`:
		for _, s := range r.sys.Sources() {
			fmt.Fprintln(r.out, " ", s)
		}
	case `\strategy`:
		if len(fields) == 1 {
			fmt.Fprintln(r.out, "strategy:", r.strategy)
			return
		}
		s, err := csqp.ParseStrategy(fields[1])
		if err != nil {
			fmt.Fprintln(r.out, "error:", err)
			return
		}
		r.strategy = s
		fmt.Fprintln(r.out, "strategy set to", s)
	case `\explain`:
		rest := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
		analyze := false
		if len(fields) > 1 {
			if m := strings.ToLower(fields[1]); m == "analyze" || m == "analyse" {
				analyze = true
				rest = strings.TrimSpace(strings.TrimPrefix(rest, fields[1]))
			}
		}
		sel, err := csqp.ParseSelect(rest)
		if err != nil {
			fmt.Fprintln(r.out, "error:", err)
			return
		}
		var e *csqp.Explanation
		if analyze {
			e, err = r.sys.ExplainAnalyze(context.Background(), r.strategy, sel.Source, sel.Cond.Key(), sel.Attrs...)
		} else {
			e, err = r.sys.ExplainPlan(context.Background(), r.strategy, sel.Source, sel.Cond.Key(), sel.Attrs...)
		}
		if e == nil {
			fmt.Fprintln(r.out, "error:", err)
			return
		}
		if err != nil {
			fmt.Fprintln(r.out, "warning:", err)
		}
		fmt.Fprint(r.out, e)
	case `\recent`:
		recent := r.sys.Recent()
		if len(recent) == 0 {
			fmt.Fprintln(r.out, "no recorded queries yet")
			return
		}
		if len(fields) > 1 {
			var n int
			if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || n <= 0 {
				fmt.Fprintln(r.out, `usage: \recent [n]`)
				return
			}
			if n < len(recent) {
				recent = recent[:n]
			}
		}
		for _, q := range recent {
			cond := q.Cond
			if len(cond) > 40 {
				cond = cond[:37] + "..."
			}
			marks := ""
			if q.Cached {
				marks += " cached"
			}
			if q.Template {
				marks += " template"
			}
			if q.Partial {
				marks += " PARTIAL"
			}
			if q.Err != "" {
				marks += " ERR:" + q.Err
			}
			fmt.Fprintf(r.out, "  #%-4d %s  %-10s %-40s %5d rows  %-12s fp=%s%s\n",
				q.Seq, q.Time.Format("15:04:05.000"), q.Source, cond, q.Rows, q.Duration.Round(time.Microsecond), q.Fingerprint, marks)
		}
	case `\compare`:
		rest := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
		sel, err := csqp.ParseSelect(rest)
		if err != nil {
			fmt.Fprintln(r.out, "error:", err)
			return
		}
		for _, s := range []csqp.Strategy{csqp.GenCompact, csqp.GenModular, csqp.CNF, csqp.DNF, csqp.Disco, csqp.Naive} {
			res, err := r.sys.QueryCond(context.Background(), s, sel.Source, sel.Cond, sel.Attrs)
			if err != nil {
				if errors.Is(err, csqp.ErrInfeasible) {
					fmt.Fprintf(r.out, "  %-11s infeasible\n", s)
					continue
				}
				fmt.Fprintf(r.out, "  %-11s error: %v\n", s, err)
				continue
			}
			fmt.Fprintf(r.out, "  %-11s %d queries, cost %.2f, %d rows\n",
				s, len(res.SourceQueries), res.Cost, res.Answer.Len())
		}
	case `\trace`:
		rest := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
		if rest == "" {
			fmt.Fprintln(r.out, `usage: \trace SELECT a, b FROM src WHERE <cond>`)
			return
		}
		ctx, tr := csqp.Trace(context.Background())
		r.queryCtx(ctx, rest)
		fmt.Fprint(r.out, tr.Tree())
	case `\cache`:
		ts := r.sys.TemplateStats()
		fmt.Fprintf(r.out, "plan templates: %d hits, %d misses (%.0f%% hit rate), %d fallbacks, %d infeasible, %d evictions, %d coalesced waits\n",
			ts.Hits, ts.Misses, ts.HitRate()*100, ts.Fallbacks, ts.Infeasible, ts.Evictions, ts.CoalescedWaits)
		st := r.sys.CacheStats()
		fmt.Fprintf(r.out, "plan cache: %d hits, %d misses (%.0f%% hit rate), %d evictions, %d coalesced waits\n",
			st.Hits, st.Misses, st.HitRate()*100, st.Evictions, st.CoalescedWaits)
		sc := r.sys.SourceCacheStats()
		fmt.Fprintf(r.out, "source cache: %d hits, %d misses, %d evictions, %d expirations, %d coalesced waits (%d entries, %d rows held)\n",
			sc.Hits, sc.Misses, sc.Evictions, sc.Expirations, sc.CoalescedWaits, sc.Entries, sc.Rows)
	case `\metrics`:
		snap := r.sys.Metrics().Snapshot()
		for _, c := range snap.Counters {
			fmt.Fprintf(r.out, "%s%s %.0f\n", c.Name, labelSuffix(c.Labels), c.Value)
		}
		for _, g := range snap.Gauges {
			fmt.Fprintf(r.out, "%s%s %g\n", g.Name, labelSuffix(g.Labels), g.Value)
		}
		for _, h := range snap.Histograms {
			fmt.Fprintf(r.out, "%s%s count=%d sum=%.6f\n", h.Name, labelSuffix(h.Labels), h.Count, h.Sum)
		}
	default:
		fmt.Fprintf(r.out, "unknown command %s (try \\help)\n", fields[0])
	}
}

// labelSuffix renders metric labels as {k=v,...} (empty when unlabeled).
func labelSuffix(labels []obs.Attr) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=" + l.Val
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func (r *repl) query(stmt string) { r.queryCtx(context.Background(), stmt) }

func (r *repl) queryCtx(ctx context.Context, stmt string) {
	sel, err := csqp.ParseSelect(stmt)
	if err != nil {
		fmt.Fprintln(r.out, "error:", err)
		return
	}
	var res *csqp.Result
	if len(sel.Attrs) == 1 && sel.Attrs[0] == "*" {
		res, err = r.sys.QuerySQL(stmt)
	} else {
		res, err = r.sys.QueryCond(ctx, r.strategy, sel.Source, sel.Cond, sel.Attrs)
	}
	if err != nil {
		var pe *csqp.PartialError
		if res == nil || !errors.As(err, &pe) {
			fmt.Fprintln(r.out, "error:", err)
			return
		}
		// A degraded Union still carries the surviving partitions' rows;
		// show them rather than discarding the partial answer.
		fmt.Fprintf(r.out, "warning: partial answer (%s) — dropped sources %v: %v\n",
			strings.Join(pe.Reasons(), ","), pe.DroppedSources(), err)
	}
	res.Answer.Sort()
	names := res.Answer.Schema().Names()
	fmt.Fprintln(r.out, strings.Join(names, "\t"))
	for i, t := range res.Answer.Tuples() {
		if i == r.maxRows {
			fmt.Fprintf(r.out, "... (%d more rows)\n", res.Answer.Len()-r.maxRows)
			break
		}
		cells := make([]string, len(names))
		for j, n := range names {
			v, _ := t.Lookup(n)
			cells[j] = v.Text()
		}
		fmt.Fprintln(r.out, strings.Join(cells, "\t"))
	}
	fmt.Fprintf(r.out, "(%d rows, %d source queries, cost %.2f)\n",
		res.Answer.Len(), len(res.SourceQueries), res.Cost)
}
