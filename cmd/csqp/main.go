// Command csqp is the mediator CLI: it answers capability-sensitive
// select-project queries against a demo source or a user-supplied
// (TSV data + SSDL description) source, and can compare the plans every
// strategy would generate.
//
// Usage:
//
//	csqp -demo bookstore -query '(author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams"' -attrs title,isbn
//	csqp -data cars.tsv -ssdl cars.ssdl -query 'make = "BMW" ^ price < 40000' -attrs model -strategy CNF
//	csqp -demo cars -query '...' -attrs make,model -compare
//	csqp -demo cars -query '...' -attrs model -explain           # plan only
//	csqp -demo cars -query '...' -attrs model -explain=analyze   # execute + profile
//	csqp -demo bookstore -serve :8080        # serve the demo source over HTTP
//	csqp -demo bookstore -repl               # interactive shell
//
// Supported strategies: GenCompact (default), GenModular, CNF, DNF,
// DISCO, Naive.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro"
	"repro/internal/daemon"
	"repro/internal/relation"
	"repro/internal/source"
	"repro/internal/ssdl"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "csqp:", err)
		os.Exit(1)
	}
}

func run() error {
	demo := flag.String("demo", "", "built-in demo source: bookstore or cars")
	dataPath := flag.String("data", "", "TSV relation file (typed header)")
	ssdlPath := flag.String("ssdl", "", "SSDL description file")
	query := flag.String("query", "", "target-query condition")
	attrsFlag := flag.String("attrs", "", "comma-separated requested attributes")
	strategyName := flag.String("strategy", "GenCompact", "planning strategy")
	compare := flag.Bool("compare", false, "compare all strategies")
	var explain explainFlag
	flag.Var(&explain, "explain", `print the chosen plan with costs ("analyze" also executes it and prints per-operator row counts, timings and estimate errors)`)
	jsonOut := flag.Bool("json", false, "render -explain output as JSON instead of text")
	serve := flag.String("serve", "", "serve the source over HTTP at this address instead of querying")
	interactive := flag.Bool("repl", false, "start an interactive shell over the loaded source")
	size := flag.Int("size", 0, "demo dataset size (0 = default)")
	pageSize := flag.Int("paged", 0, "override the source's page size: hand out at most N tuples per round-trip behind a cursor (0 = keep the description's)")
	limit := flag.Int("limit", 0, "override the source's result bound: truncate answers past N tuples, like a web form's top-k cutoff (0 = keep the description's)")
	timeout := flag.Duration("timeout", 0, "per-source-query attempt timeout (0 = none)")
	retries := flag.Int("retries", 0, "retries per failed source query (transport errors only)")
	deadline := flag.Duration("deadline", 0, "overall deadline for the whole query (0 = none)")
	partial := flag.Bool("partial", false, "degrade Union plans to the branches that succeed, reporting dropped sources")
	streaming := flag.String("streaming", "auto", "execution engine: auto (streaming unless CSQP_STREAMING=0), on, off")
	srcCache := flag.Int("source-cache", 0, "memoize source-query answers: entries per source (0 = disabled)")
	srcCacheTTL := flag.Duration("source-cache-ttl", 0, "staleness bound for cached source answers (0 = 1m default)")
	stats := flag.Bool("stats", false, "enable the plan cache and print cache/memo statistics after the query")
	trace := flag.Bool("trace", false, "record the query's span tree (rewrite, check, generate, cost, fix, execute) and print it")
	metricsAddr := flag.String("metrics-addr", "", "serve the telemetry registry over HTTP at this address (GET /metrics, /metrics.json)")
	flag.Parse()

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	var tr *csqp.Tracer
	if *trace {
		ctx, tr = csqp.Trace(ctx)
	}
	streamMode, err := parseStreaming(*streaming)
	if err != nil {
		return err
	}
	sysOpts := csqp.Options{
		Streaming:       streamMode,
		QueryTimeout:    *timeout,
		QueryRetries:    *retries,
		PartialAnswers:  *partial,
		SourceCacheSize: *srcCache,
		SourceCacheTTL:  *srcCacheTTL,
		// Surface degradations, breaker transitions and swallowed errors on
		// stderr, away from the query output on stdout.
		Logger: slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn})),
	}

	rel, grammar, err := loadSource(*demo, *dataPath, *ssdlPath, *size)
	if err != nil {
		return err
	}
	// Bound overrides reshape the source's interface limitations without
	// editing its description — a served source then advertises them via
	// /describe, so a mediator registering it plans around them.
	if *pageSize > 0 {
		grammar.PageSize = *pageSize
	}
	if *limit > 0 {
		grammar.Limit = *limit
	}

	if *serve != "" {
		src, err := source.NewLocal("", rel, grammar)
		if err != nil {
			return err
		}
		h := source.NewHandler(src)
		h.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, nil)))
		// The shared hardened lifecycle: header-read timeouts against
		// slowloris clients and a graceful drain on SIGINT/SIGTERM, the
		// same server the daemon runs under.
		sigCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
		return daemon.Serve(sigCtx, daemon.ServeOptions{
			Addr:    *serve,
			Handler: h,
			Logger:  slog.New(slog.NewTextHandler(os.Stderr, nil)),
			OnListen: func(a net.Addr) {
				fmt.Printf("serving source %q (%d tuples) at %s\n", src.Name(), rel.Len(), a)
				fmt.Printf("endpoints: GET /describe, GET /stats, POST /query\n")
			},
		})
	}

	if *interactive {
		sys := csqp.NewSystem(sysOpts)
		sys.EnableCache()
		if err := sys.AddSourceGrammar(rel, grammar); err != nil {
			return err
		}
		if *metricsAddr != "" {
			if err := serveMetrics(sys, *metricsAddr); err != nil {
				return err
			}
		}
		return runREPL(sys, os.Stdin, os.Stdout)
	}

	if *query == "" {
		return errors.New("missing -query (or -serve / -repl)")
	}
	attrs := splitList(*attrsFlag)
	if len(attrs) == 0 {
		return errors.New("missing -attrs")
	}

	sys := csqp.NewSystem(sysOpts)
	if *stats {
		sys.EnableCache()
	}
	if err := sys.AddSourceGrammar(rel, grammar); err != nil {
		return err
	}
	if *metricsAddr != "" {
		if err := serveMetrics(sys, *metricsAddr); err != nil {
			return err
		}
	}
	srcName := grammar.Source

	if *compare {
		return compareAll(sys, srcName, *query, attrs)
	}

	strategy, err := csqp.ParseStrategy(*strategyName)
	if err != nil {
		return err
	}
	if explain.mode != "" {
		var e *csqp.Explanation
		var eerr error
		if explain.mode == "analyze" {
			e, eerr = sys.ExplainAnalyze(ctx, strategy, srcName, *query, attrs...)
		} else {
			e, eerr = sys.ExplainPlan(ctx, strategy, srcName, *query, attrs...)
		}
		if e == nil {
			printTrace(tr)
			return eerr
		}
		if eerr != nil {
			// A partial EXPLAIN ANALYZE still explains what survived.
			fmt.Fprintln(os.Stderr, "warning:", eerr)
		}
		if *jsonOut {
			raw, err := json.MarshalIndent(e, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(raw))
		} else {
			fmt.Print(e)
		}
		if *stats {
			printStats(sys, nil)
		}
		printTrace(tr)
		return waitMetrics(*metricsAddr)
	}
	cond, err := csqp.ParseCondition(*query)
	if err != nil {
		return err
	}
	res, err := sys.QueryCond(ctx, strategy, srcName, cond, attrs)
	if err != nil {
		var pe *csqp.PartialError
		if res == nil || !errors.As(err, &pe) {
			// The trace shows which source attempt killed the query, so
			// print it on the failure path too.
			printTrace(tr)
			return err
		}
		fmt.Fprintf(os.Stderr, "warning: partial answer (%s) — dropped sources %v: %v\n",
			strings.Join(pe.Reasons(), ","), pe.DroppedSources(), err)
	}
	fmt.Printf("strategy: %s\nsource queries: %d\nplan cost: %.2f\n\n%s\n",
		strategy, len(res.SourceQueries), res.Cost, csqp.FormatPlan(res.Plan))
	res.Answer.Sort()
	if err := relation.WriteTSV(os.Stdout, res.Answer); err != nil {
		return err
	}
	fmt.Printf("\n%d rows\n", res.Answer.Len())
	if *stats {
		printStats(sys, res.Metrics)
	}
	printTrace(tr)
	return waitMetrics(*metricsAddr)
}

func printStats(sys *csqp.System, m *csqp.Metrics) {
	ts := sys.TemplateStats()
	fmt.Printf("\nplan templates: %d hits, %d misses (%.0f%% hit rate), %d fallbacks, %d infeasible, %d evictions, %d coalesced waits\n",
		ts.Hits, ts.Misses, ts.HitRate()*100, ts.Fallbacks, ts.Infeasible, ts.Evictions, ts.CoalescedWaits)
	st := sys.CacheStats()
	fmt.Printf("plan cache: %d hits, %d misses (%.0f%% hit rate), %d evictions, %d coalesced waits\n",
		st.Hits, st.Misses, st.HitRate()*100, st.Evictions, st.CoalescedWaits)
	sc := sys.SourceCacheStats()
	fmt.Printf("source cache: %d hits, %d misses, %d evictions, %d expirations, %d coalesced waits (%d entries, %d rows held)\n",
		sc.Hits, sc.Misses, sc.Evictions, sc.Expirations, sc.CoalescedWaits, sc.Entries, sc.Rows)
	if m != nil {
		switch {
		case m.Cached && m.Template:
			fmt.Println("plan bound from cached template (no planning ran)")
		case m.Cached:
			fmt.Println("plan served from cache (no planning ran)")
		}
		fmt.Printf("checker memo: %d calls, %d misses (%.0f%% hit rate)\n",
			m.CheckCalls, m.CheckMisses, m.CheckHitRate()*100)
	}
}

// explainFlag parses -explain: it behaves as a boolean (-explain means
// static EXPLAIN) but also accepts a mode (-explain=analyze executes the
// plan and profiles it).
type explainFlag struct{ mode string } // "", "plan" or "analyze"

func (f *explainFlag) String() string { return f.mode }

func (f *explainFlag) Set(v string) error {
	switch strings.ToLower(v) {
	case "", "true", "plan":
		f.mode = "plan"
	case "analyze", "analyse":
		f.mode = "analyze"
	case "false":
		f.mode = ""
	default:
		return fmt.Errorf("unknown explain mode %q (want plan or analyze)", v)
	}
	return nil
}

// IsBoolFlag lets a bare -explain (no value) select static EXPLAIN.
func (f *explainFlag) IsBoolFlag() bool { return true }

// printTrace renders the recorded span tree, if tracing was on.
func printTrace(tr *csqp.Tracer) {
	if tr == nil {
		return
	}
	fmt.Printf("\ntrace:\n%s", tr.Tree())
}

// serveMetrics exposes the system's telemetry registry — and the Go
// runtime profiler under /debug/pprof/ — over HTTP in the background,
// failing fast if the address cannot be bound.
func serveMetrics(sys *csqp.System, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/", sys.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Fprintf(os.Stderr, "metrics: serving at http://%s/metrics (pprof at /debug/pprof/)\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
		}
	}()
	return nil
}

// waitMetrics keeps a one-shot invocation alive after the query output so
// the -metrics-addr endpoint can be scraped; interrupt to exit.
func waitMetrics(addr string) error {
	if addr == "" {
		return nil
	}
	fmt.Fprintln(os.Stderr, "metrics: endpoint stays up — interrupt (Ctrl-C) to exit")
	select {}
}

func loadSource(demo, dataPath, ssdlPath string, size int) (*relation.Relation, *ssdl.Grammar, error) {
	switch {
	case demo == "bookstore":
		if size == 0 {
			size = workload.DefaultBookstoreSize
		}
		rel, g := workload.Bookstore(size, 1)
		return rel, g, nil
	case demo == "cars":
		if size == 0 {
			size = workload.DefaultCarsSize
		}
		rel, g := workload.Cars(size, 1)
		return rel, g, nil
	case demo != "":
		return nil, nil, fmt.Errorf("unknown demo %q (want bookstore or cars)", demo)
	case dataPath != "" && ssdlPath != "":
		f, err := os.Open(dataPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		rel, err := relation.ReadTSV(f)
		if err != nil {
			return nil, nil, err
		}
		text, err := os.ReadFile(ssdlPath)
		if err != nil {
			return nil, nil, err
		}
		g, err := ssdl.Parse(string(text))
		if err != nil {
			return nil, nil, err
		}
		return rel, g, nil
	default:
		return nil, nil, errors.New("need -demo, or -data together with -ssdl")
	}
}

func compareAll(sys *csqp.System, src, query string, attrs []string) error {
	fmt.Printf("%-12s %-9s %-14s %-12s %-10s\n", "strategy", "feasible", "source queries", "plan cost", "answer")
	for _, s := range []csqp.Strategy{csqp.GenCompact, csqp.GenModular, csqp.CNF, csqp.DNF, csqp.Disco, csqp.Naive} {
		res, err := sys.QueryWith(s, src, query, attrs...)
		if err != nil {
			if errors.Is(err, csqp.ErrInfeasible) {
				fmt.Printf("%-12s %-9s\n", s, "no")
				continue
			}
			return fmt.Errorf("%s: %w", s, err)
		}
		fmt.Printf("%-12s %-9s %-14d %-12.2f %-10d\n", s, "yes", len(res.SourceQueries), res.Cost, res.Answer.Len())
	}
	return nil
}

func parseStreaming(name string) (csqp.StreamingMode, error) {
	switch strings.ToLower(name) {
	case "auto", "":
		return csqp.StreamingAuto, nil
	case "on":
		return csqp.StreamingOn, nil
	case "off":
		return csqp.StreamingOff, nil
	default:
		return 0, fmt.Errorf("unknown streaming mode %q (want auto, on or off)", name)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
