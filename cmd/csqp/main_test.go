package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro"
)

func TestParseStrategy(t *testing.T) {
	tests := map[string]csqp.Strategy{
		"GenCompact": csqp.GenCompact,
		"gencompact": csqp.GenCompact,
		"GENMODULAR": csqp.GenModular,
		"cnf":        csqp.CNF,
		"dnf":        csqp.DNF,
		"disco":      csqp.Disco,
		"Naive":      csqp.Naive,
	}
	for name, want := range tests {
		got, err := csqp.ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := csqp.ParseStrategy("quantum"); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(" a, b ,,c "); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("splitList = %v", got)
	}
	if got := splitList(""); got != nil {
		t.Errorf("splitList empty = %v", got)
	}
}

func TestLoadSourceDemos(t *testing.T) {
	rel, g, err := loadSource("bookstore", "", "", 500)
	if err != nil || rel.Len() != 500 || g.Source != "books" {
		t.Errorf("bookstore demo: %v, %d, %q", err, rel.Len(), g.Source)
	}
	rel, g, err = loadSource("cars", "", "", 300)
	if err != nil || rel.Len() != 300 || g.Source != "autos" {
		t.Errorf("cars demo: %v", err)
	}
	if _, _, err := loadSource("pets", "", "", 0); err == nil {
		t.Error("unknown demo should fail")
	}
	if _, _, err := loadSource("", "", "", 0); err == nil {
		t.Error("no inputs should fail")
	}
}

func TestLoadSourceFromFiles(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "r.tsv")
	desc := filepath.Join(dir, "r.ssdl")
	if err := os.WriteFile(data, []byte("a:int\tb:string\n1\tx\n2\ty\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(desc, []byte("source R\nattrs a, b\ns1 -> a = $v:int\nattributes :: s1 : {a, b}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rel, g, err := loadSource("", data, desc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || g.Source != "R" {
		t.Errorf("loaded %d rows from %q", rel.Len(), g.Source)
	}
	// Bad files fail cleanly.
	if _, _, err := loadSource("", filepath.Join(dir, "missing.tsv"), desc, 0); err == nil {
		t.Error("missing data file should fail")
	}
	if _, _, err := loadSource("", data, filepath.Join(dir, "missing.ssdl"), 0); err == nil {
		t.Error("missing ssdl file should fail")
	}
}

func TestCompareAllRuns(t *testing.T) {
	rel, g, err := loadSource("bookstore", "", "", 1000)
	if err != nil {
		t.Fatal(err)
	}
	sys := csqp.NewSystem()
	if err := sys.AddSourceGrammar(rel, g); err != nil {
		t.Fatal(err)
	}
	if err := compareAll(sys, "books",
		`(author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams"`,
		[]string{"isbn"}); err != nil {
		t.Fatal(err)
	}
}

func TestREPLSession(t *testing.T) {
	rel, g, err := loadSource("bookstore", "", "", 2000)
	if err != nil {
		t.Fatal(err)
	}
	sys := csqp.NewSystem()
	sys.EnableCache()
	if err := sys.AddSourceGrammar(rel, g); err != nil {
		t.Fatal(err)
	}
	session := `
\sources
\strategy
\strategy cnf
\strategy gencompact
SELECT isbn FROM books WHERE author = "Carl Jung" ^ title contains "dreams"
\explain SELECT isbn FROM books WHERE author = "Carl Jung"
\compare SELECT isbn FROM books WHERE (author = "Sigmund Freud" _ author = "Carl Jung") ^ title contains "dreams"
\cache
\badcmd
SELECT nonsense
\q
`
	var out strings.Builder
	if err := runREPL(sys, strings.NewReader(session), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"books",                // \sources
		"strategy: GenCompact", // \strategy
		"strategy set to CNF",  // \strategy cnf
		"source queries, cost", // query footer
		"SourceQuery[books]",   // \explain
		"infeasible",           // \compare shows DISCO/Naive failing
		"plan templates:",      // \cache
		"plan cache:",          // \cache
		"unknown command",      // \badcmd
		"error:",               // bad SELECT
	} {
		if !strings.Contains(text, want) {
			t.Errorf("REPL output missing %q:\n%s", want, text)
		}
	}
}
