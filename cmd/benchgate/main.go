// Benchgate is a dependency-free stand-in for benchstat used by the CI
// benchmark regression gate.
//
// Two modes:
//
//	benchgate -emit < bench.txt > BENCH_plan.json
//	    Parse `go test -bench -benchmem` output from stdin into a small
//	    JSON snapshot (ns/op, B/op, allocs/op per benchmark).
//
//	benchgate -compare [-threshold 0.20] [-strict] old.json new.json
//	    Compare two snapshots. Allocation regressions (allocs/op, B/op)
//	    beyond the threshold are reported — as warnings by default, as
//	    failures with -strict. Time regressions (ns/op) are always
//	    informational only, because wall-clock numbers are not comparable
//	    across machines; the committed baseline gates on allocation
//	    counts, which are deterministic.
//
//	    -pair NUM:DEN:MAX[,NUM:DEN:MAX...] additionally gates WITHIN the
//	    new snapshot: benchmark NUM's ns/op divided by DEN's must stay at
//	    or under MAX. Both sides of a pair come from the same run on the
//	    same machine, so — unlike cross-snapshot ns/op — the ratio IS
//	    portable and can be gated strictly. DEN may also name a custom
//	    metric reported by NUM itself (b.ReportMetric unit, e.g.
//	    "ns-ratio"); then that metric's value is gated directly against
//	    MAX — the tightest form, since an interleaved benchmark measures
//	    both sides of its ratio under identical machine conditions (the
//	    execution profiler's <=5% overhead budget is gated this way).
//
// Warnings use the GitHub Actions `::warning::` annotation syntax so they
// surface on the workflow summary.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type benchmark struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
	// Extra holds custom b.ReportMetric units (e.g. "check-hit-rate"),
	// recorded for context and compared informationally only.
	Extra map[string]float64 `json:"extra,omitempty"`
}

type snapshot struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

// gomaxprocsSuffix strips the trailing "-8" style GOMAXPROCS marker so
// snapshots taken on machines with different core counts stay comparable.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	emit := flag.Bool("emit", false, "parse `go test -bench` output on stdin, write JSON to stdout")
	compare := flag.Bool("compare", false, "compare two JSON snapshots: benchgate -compare old.json new.json")
	threshold := flag.Float64("threshold", 0.20, "relative regression that triggers a report")
	strict := flag.Bool("strict", false, "exit nonzero on allocation regressions")
	pairs := flag.String("pair", "", "within-snapshot ns/op ratio gates on the new snapshot: comma-separated NUM:DEN:MAX triples")
	flag.Parse()

	switch {
	case *emit:
		if err := runEmit(); err != nil {
			fatal(err)
		}
	case *compare:
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("usage: benchgate -compare old.json new.json"))
		}
		regressed, err := runCompare(flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fatal(err)
		}
		pairRegressed, err := runPairs(flag.Arg(1), *pairs)
		if err != nil {
			fatal(err)
		}
		if (regressed || pairRegressed) && *strict {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}

func runEmit() error {
	snap, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// parseBench extracts benchmark result lines of the form
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   7 allocs/op
//
// Other output (PASS, ok, log lines) is ignored.
func parseBench(r *os.File) (*snapshot, error) {
	snap := &snapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		bm := benchmark{Name: gomaxprocsSuffix.ReplaceAllString(fields[0], "")}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				bm.NsOp, seen = v, true
			case "B/op":
				bm.BOp, seen = v, true
			case "allocs/op":
				bm.AllocsOp, seen = v, true
			default:
				// Custom b.ReportMetric units (check-hit-rate, MB/s, ...).
				if strings.Contains(unit, "/") || strings.Contains(unit, "-") {
					if bm.Extra == nil {
						bm.Extra = make(map[string]float64)
					}
					bm.Extra[unit] = v
					seen = true
				}
			}
		}
		if seen {
			snap.Benchmarks = append(snap.Benchmarks, bm)
		}
	}
	return snap, sc.Err()
}

func load(path string) (map[string]benchmark, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]benchmark, len(snap.Benchmarks))
	order := make([]string, 0, len(snap.Benchmarks))
	for _, b := range snap.Benchmarks {
		if _, dup := m[b.Name]; !dup {
			order = append(order, b.Name)
		}
		m[b.Name] = b
	}
	return m, order, nil
}

func runCompare(oldPath, newPath string, threshold float64) (regressed bool, err error) {
	oldM, order, err := load(oldPath)
	if err != nil {
		return false, err
	}
	newM, _, err := load(newPath)
	if err != nil {
		return false, err
	}
	fmt.Printf("%-34s %14s %14s %14s\n", "benchmark", "allocs Δ", "bytes Δ", "ns Δ (info)")
	for _, name := range order {
		o, n := oldM[name], newM[name]
		if _, ok := newM[name]; !ok {
			fmt.Printf("::warning::benchmark %s missing from new run\n", name)
			continue
		}
		da := delta(o.AllocsOp, n.AllocsOp)
		db := delta(o.BOp, n.BOp)
		dt := delta(o.NsOp, n.NsOp)
		fmt.Printf("%-34s %14s %14s %14s\n", name, pct(da), pct(db), pct(dt))
		if da > threshold {
			regressed = true
			fmt.Printf("::warning::%s allocs/op regressed %s (%.0f -> %.0f)\n", name, pct(da), o.AllocsOp, n.AllocsOp)
		}
		if db > threshold {
			regressed = true
			fmt.Printf("::warning::%s B/op regressed %s (%.0f -> %.0f)\n", name, pct(db), o.BOp, n.BOp)
		}
		if dt > threshold {
			// Informational only: timing is machine-dependent.
			fmt.Printf("::notice::%s ns/op changed %s on this machine (baseline hardware differs)\n", name, pct(dt))
		}
		// Custom metrics are context, not gates: hit rates and throughputs
		// shift legitimately with workload changes.
		for unit, nv := range n.Extra {
			if ov, ok := o.Extra[unit]; ok && delta(ov, nv) != 0 {
				fmt.Printf("  %s %s: %g -> %g\n", name, unit, ov, nv)
			}
		}
	}
	for name := range newM {
		if _, ok := oldM[name]; !ok {
			fmt.Printf("new benchmark (no baseline): %s\n", name)
		}
	}
	return regressed, nil
}

// runPairs enforces within-snapshot ratio gates: for each NUM:DEN:MAX
// triple, either snapshot[NUM].NsOp / snapshot[DEN].NsOp (when DEN names
// a benchmark) or NUM's reported DEN metric (when it names a custom
// b.ReportMetric unit) must stay at or under MAX. All numbers come from
// the same run, so the ratio is machine-independent and gated as a hard
// failure (with -strict).
func runPairs(newPath, spec string) (regressed bool, err error) {
	if spec == "" {
		return false, nil
	}
	newM, _, err := load(newPath)
	if err != nil {
		return false, err
	}
	for _, triple := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(triple), ":")
		if len(parts) != 3 {
			return false, fmt.Errorf("bad -pair entry %q (want NUM:DEN:MAX)", triple)
		}
		max, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return false, fmt.Errorf("bad -pair ratio in %q: %w", triple, err)
		}
		num, ok := newM[parts[0]]
		if !ok {
			return false, fmt.Errorf("-pair benchmark %s missing from %s", parts[0], newPath)
		}
		var ratio float64
		if den, ok := newM[parts[1]]; ok {
			if den.NsOp == 0 {
				return false, fmt.Errorf("-pair denominator %s has zero ns/op", parts[1])
			}
			ratio = num.NsOp / den.NsOp
		} else if v, ok := num.Extra[parts[1]]; ok {
			ratio = v
		} else {
			return false, fmt.Errorf("-pair %q: %s is neither a benchmark in %s nor a metric reported by %s", triple, parts[1], newPath, parts[0])
		}
		status := "ok"
		if ratio > max {
			regressed = true
			status = "FAIL"
			fmt.Printf("::warning::%s/%s ratio %.3f exceeds the %.2f budget\n", parts[0], parts[1], ratio, max)
		}
		fmt.Printf("pair %s / %s: ratio %.3f (budget %.2f) %s\n", parts[0], parts[1], ratio, max, status)
	}
	return regressed, nil
}

// delta returns the relative change from old to new. A zero baseline with
// a nonzero new value counts as a full regression.
func delta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 1
	}
	return (new - old) / old
}

func pct(d float64) string {
	return fmt.Sprintf("%+.1f%%", d*100)
}
