// Command ssdlcheck validates an SSDL source description and runs the
// paper's Check function against it: given a condition expression it
// reports whether the source supports the query and which attributes it
// would export.
//
// Usage:
//
//	ssdlcheck -ssdl cars.ssdl                                   # validate + lint + summarize
//	ssdlcheck -ssdl cars.ssdl -query 'make = "BMW" ^ price < 40000' -attrs model,year
//	ssdlcheck -ssdl cars.ssdl -closure -query '...'             # check against the commutative closure
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/condition"
	"repro/internal/ssdl"
	"repro/internal/strset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ssdlcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	path := flag.String("ssdl", "", "SSDL description file (- for stdin)")
	query := flag.String("query", "", "condition expression to check")
	attrsFlag := flag.String("attrs", "", "comma-separated requested attributes")
	closure := flag.Bool("closure", false, "check against the commutative closure (§6.1)")
	flag.Parse()

	if *path == "" {
		return errors.New("missing -ssdl")
	}
	var text []byte
	var err error
	if *path == "-" {
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(*path)
	}
	if err != nil {
		return err
	}
	g, err := ssdl.Parse(string(text))
	if err != nil {
		return err
	}
	fmt.Printf("source: %s\n", orDash(g.Source))
	fmt.Printf("schema: %v\n", g.Schema)
	fmt.Printf("key: %s\n", orDash(g.Key))
	fmt.Printf("rules: %d, condition nonterminals: %v\n", len(g.Rules), g.CondNTs())
	for _, w := range ssdl.Lint(g) {
		fmt.Printf("warning: %s\n", w)
	}

	if *closure {
		before, after := ssdl.ClosureInflation(g, 0)
		fmt.Printf("commutative closure: %d -> %d rules\n", before, after)
		g = ssdl.CommutativeClosure(g, 0)
	}
	if *query == "" {
		return nil
	}
	cond, err := condition.Parse(*query)
	if err != nil {
		return fmt.Errorf("bad query: %w", err)
	}
	checker := ssdl.NewChecker(g)
	exported := checker.Check(cond)
	fmt.Printf("\nquery: %s\n", cond.Key())
	if exported.Empty() {
		fmt.Println("supported: no (Check returned the empty set)")
		return nil
	}
	fmt.Printf("supported: yes\nexported attributes: %s\n", exported)
	if *attrsFlag != "" {
		want := strset.New()
		for _, a := range splitList(*attrsFlag) {
			want.Add(a)
		}
		if want.SubsetOf(exported) {
			fmt.Printf("SP(C, %s, R): supported\n", want)
		} else {
			fmt.Printf("SP(C, %s, R): NOT supported (missing %s)\n", want, want.Minus(exported))
		}
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			part := s[start:i]
			for len(part) > 0 && part[0] == ' ' {
				part = part[1:]
			}
			for len(part) > 0 && part[len(part)-1] == ' ' {
				part = part[:len(part)-1]
			}
			if part != "" {
				out = append(out, part)
			}
			start = i + 1
		}
	}
	return out
}
