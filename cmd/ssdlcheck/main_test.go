package main

import (
	"reflect"
	"testing"
)

func TestSplitList(t *testing.T) {
	if got := splitList("a, b , c"); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("splitList = %v", got)
	}
	if got := splitList(""); got != nil {
		t.Errorf("splitList('') = %v", got)
	}
	if got := splitList(" ,, "); got != nil {
		t.Errorf("splitList(blank) = %v", got)
	}
}

func TestOrDash(t *testing.T) {
	if orDash("") != "-" || orDash("x") != "x" {
		t.Error("orDash wrong")
	}
}
