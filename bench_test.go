// Benchmarks: one target per experiment table (E1-E9, DESIGN.md §4) plus
// micro-benchmarks of the core operations (Check, IPG, EPG,
// canonicalization, closure, fixing, plan execution). Run with
//
//	go test -bench=. -benchmem
package csqp_test

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/genmodular"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/qa"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/source"
	"repro/internal/ssdl"
	"repro/internal/strset"
	"repro/internal/workload"
)

// ---- experiment benchmarks (one per table) ----

func BenchmarkE1Bookstore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.E1Bookstore(20000, 1)
		if err != nil {
			b.Fatal(err)
		}
		reportScenario(b, tab)
	}
}

func BenchmarkE2CarSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.E2CarSearch(5000, 1)
		if err != nil {
			b.Fatal(err)
		}
		reportScenario(b, tab)
	}
}

func BenchmarkE3PlanQuality(b *testing.B) {
	cfg := bench.QualityConfig{Seed: 1, Queries: 5, AtomCounts: []int{3, 5}, Rows: 500}
	for i := 0; i < b.N; i++ {
		if _, err := bench.E3PlanQuality(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4PlanningCost(b *testing.B) {
	cfg := bench.CostConfig{Seed: 2, Queries: 3, Sizes: []int{3, 5}}
	for i := 0; i < b.N; i++ {
		if _, err := bench.E4PlanningCost(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5PruningAblation(b *testing.B) {
	cfg := bench.CostConfig{Seed: 3, Queries: 3, Sizes: []int{3, 5}}
	for i := 0; i < b.N; i++ {
		if _, err := bench.E5PruningAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6Feasibility(b *testing.B) {
	cfg := bench.QualityConfig{Seed: 4, Queries: 5, AtomCounts: []int{3, 5}, Rows: 300}
	for i := 0; i < b.N; i++ {
		if _, err := bench.E6Feasibility(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7CheckLinear(b *testing.B) {
	cfg := bench.CheckConfig{Sizes: []int{8, 64, 256}, Repeats: 3}
	for i := 0; i < b.N; i++ {
		if _, err := bench.E7CheckLinear(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8Crossover(b *testing.B) {
	cfg := bench.CrossoverConfig{Size: 5000, K1Values: []float64{0, 10, 1000}}
	for i := 0; i < b.N; i++ {
		if _, err := bench.E8Crossover(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func reportScenario(b *testing.B, tab *bench.Table) {
	b.Helper()
	if len(tab.Rows) == 0 || tab.Rows[0][1] != "yes" {
		b.Fatalf("GenCompact infeasible in %s", tab.ID)
	}
}

// ---- micro-benchmarks ----

var microGrammar = ssdl.MustParse(`
source R
attrs make, model, year, color, price
key model
s1 -> make = $m:string ^ price < $p:int
s2 -> make = $m:string ^ color = $c:string
attributes :: s1 : {make, model, year, color}
attributes :: s2 : {make, model, year}
`)

func microContext(b *testing.B) *planner.Context {
	b.Helper()
	return &planner.Context{
		Source:  "R",
		Checker: ssdl.NewChecker(ssdl.CommutativeClosure(microGrammar, 0)),
		Model:   cost.Model{K1: 10, K2: 1, Est: cost.FixedEstimator(25)},
	}
}

var microCond = condition.MustParse(`(make = "BMW" ^ price < 40000) ^ (color = "red" _ color = "black")`)

func BenchmarkCheckSupported(b *testing.B) {
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh checker each time: measure parsing, not the memo.
		c := ssdl.NewChecker(microGrammar)
		if c.Check(cond).Empty() {
			b.Fatal("should be supported")
		}
	}
}

func BenchmarkCheckMemoized(b *testing.B) {
	c := ssdl.NewChecker(microGrammar)
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	c.Check(cond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Check(cond)
	}
}

func BenchmarkCheckMemoizedParallel(b *testing.B) {
	c := ssdl.NewChecker(microGrammar)
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	c.Check(cond)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if c.Check(cond).Empty() {
				b.Fatal("should be supported")
			}
		}
	})
}

func BenchmarkNormKey(b *testing.B) {
	// Once the canonical form and key are cached, NormKey is two pointer
	// loads; the first call pays for everything.
	condition.NormKey(microCond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		condition.NormKey(microCond)
	}
}

func BenchmarkCheckLongChain(b *testing.B) {
	g := ssdl.MustParse(`
source chain
attrs a
chain -> a = $v:int | a = $v:int ^ chain
attributes :: chain : {a}
`)
	kids := make([]condition.Node, 128)
	for i := range kids {
		kids[i] = condition.NewAtomic("a", condition.OpEq, condition.Int(int64(i)))
	}
	cond := &condition.And{Kids: kids}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := ssdl.NewChecker(g)
		if c.Check(cond).Empty() {
			b.Fatal("chain should be supported")
		}
	}
}

func BenchmarkIPGSection4(b *testing.B) {
	// context.Background() carries no tracer, so this doubles as the
	// disabled-telemetry regression gate: allocs/op must not grow when the
	// span machinery is off (benchgate compares against the baseline).
	ctx := microContext(b)
	gc := core.New()
	b.ReportAllocs()
	var calls, misses int64
	for i := 0; i < b.N; i++ {
		_, m, err := gc.Plan(context.Background(), ctx, microCond, []string{"model", "year"})
		if err != nil {
			b.Fatal(err)
		}
		calls += int64(m.CheckCalls)
		misses += int64(m.CheckMisses)
	}
	reportCheckHitRate(b, calls, misses)
}

func BenchmarkIPGSection4Traced(b *testing.B) {
	// The traced twin of BenchmarkIPGSection4: the delta between the two
	// is the whole cost of span recording.
	pc := microContext(b)
	gc := core.New()
	tr := obs.NewTracer(0)
	ctx := obs.WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Reset()
		if _, _, err := gc.Plan(ctx, pc, microCond, []string{"model", "year"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEPGSection4(b *testing.B) {
	ctx := microContext(b)
	gm := &genmodular.Planner{Rewrite: rewrite.Config{Rules: rewrite.AllRules, MaxCTs: 500, MaxAtoms: 8}}
	b.ReportAllocs()
	var calls, misses int64
	for i := 0; i < b.N; i++ {
		_, m, err := gm.Plan(context.Background(), ctx, microCond, []string{"model", "year"})
		if err != nil {
			b.Fatal(err)
		}
		calls += int64(m.CheckCalls)
		misses += int64(m.CheckMisses)
	}
	reportCheckHitRate(b, calls, misses)
}

// reportCheckHitRate attaches the checker-memo hit rate to the benchmark
// output, so BENCH_*.json carries effectiveness context next to ns/op.
func reportCheckHitRate(b *testing.B, calls, misses int64) {
	b.Helper()
	if calls > 0 {
		b.ReportMetric(float64(calls-misses)/float64(calls), "check-hit-rate")
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	// The no-op fast path: Start against a tracer-less context must stay
	// allocation-free — untraced queries pay nothing for the telemetry
	// layer.
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := obs.Start(ctx, "bench.span")
		sp.SetAttr("k", "v")
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := obs.NewTracer(0)
	ctx := obs.WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			tr.Reset() // stay under the span buffer bound
		}
		c, sp := obs.Start(ctx, "bench.span")
		sp.SetAttr("k", "v")
		sp.End()
		_ = c
	}
}

func BenchmarkCanonicalize(b *testing.B) {
	n := condition.MustParse(`a = 1 ^ (b = 2 ^ (c = 3 ^ (d = 4 _ (e = 5 _ f = 6))))`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		condition.Canonicalize(n)
	}
}

func BenchmarkDistributiveClosure(b *testing.B) {
	n := condition.MustParse(workload.Example12Condition)
	cfg := rewrite.Config{Rules: rewrite.DistributiveOnly, MaxCTs: 128, MaxAtoms: 24}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rewrite.Closure(n, cfg)
	}
}

func BenchmarkCommutativeClosure(b *testing.B) {
	g := ssdl.MustParse(workload.CarsGrammar)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ssdl.CommutativeClosure(g, 0)
	}
}

func BenchmarkFixReorder(b *testing.B) {
	orig := ssdl.NewChecker(microGrammar)
	cond := condition.MustParse(`color = "red" ^ make = "BMW"`)
	attrs := strset.New("model", "year")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := ssdl.Fix(orig, cond, attrs, 0); !ok {
			b.Fatal("fix failed")
		}
	}
}

func BenchmarkPlanExecution(b *testing.B) {
	rel, g := workload.Cars(5000, 1)
	src, err := source.NewLocal("", rel, g)
	if err != nil {
		b.Fatal(err)
	}
	p := &plan.Union{Inputs: []plan.Plan{
		plan.NewSourceQuery("autos", condition.MustParse(`style = "sedan" ^ make = "Toyota" ^ price <= 20000 ^ (size = "compact" _ size = "midsize")`), []string{"make", "model", "price"}),
		plan.NewSourceQuery("autos", condition.MustParse(`style = "sedan" ^ make = "BMW" ^ price <= 40000 ^ (size = "compact" _ size = "midsize")`), []string{"make", "model", "price"}),
	}}
	srcs := plan.SourceMap{"autos": src}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Execute(context.Background(), p, srcs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectScan(b *testing.B) {
	rel, _ := workload.Cars(20000, 1)
	cond := condition.MustParse(`make = "Toyota" ^ price <= 20000`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rel.Count(cond); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOracleEstimator(b *testing.B) {
	rel, _ := workload.Cars(20000, 1)
	est := cost.NewOracleEstimator(map[string]*relation.Relation{"autos": rel})
	cond := condition.MustParse(`make = "Toyota" ^ price <= 20000`)
	est.ResultSize("autos", cond) // warm the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.ResultSize("autos", cond)
	}
}

// benchCountingQuerier counts upstream calls so the hit benchmark can
// prove the cache never touched the source.
type benchCountingQuerier struct {
	inner plan.Querier
	calls atomic.Int64
}

func (q *benchCountingQuerier) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	q.calls.Add(1)
	return q.inner.Query(ctx, cond, attrs)
}

func BenchmarkSourceCacheHit(b *testing.B) {
	// Steady-state hit path: every iteration after warm-up is a lookup +
	// clone, with zero upstream queries (asserted below — the gate also
	// catches allocation creep on this path).
	rel, g := workload.Cars(5000, 1)
	src, err := source.NewLocal("autos", rel, g)
	if err != nil {
		b.Fatal(err)
	}
	counted := &benchCountingQuerier{inner: src}
	cached := source.NewCached("autos", counted, source.CacheOptions{
		MaxEntries: 16,
		TTL:        time.Hour,
	})
	cond := condition.MustParse(`make = "Toyota" ^ price <= 20000`)
	attrs := []string{"make", "model", "price"}
	if _, err := cached.Query(context.Background(), cond, attrs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cached.Query(context.Background(), cond, attrs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := counted.calls.Load(); got != 1 {
		b.Fatalf("upstream queries = %d, want exactly 1 (the warm-up miss)", got)
	}
	if st := cached.Stats(); st.Hits != b.N {
		b.Fatalf("cache hits = %d, want %d", st.Hits, b.N)
	}
}

func BenchmarkPagedFetch(b *testing.B) {
	// Cursor-loop fetch of one answer: each iteration walks every page of
	// the matching rows through Paged.Query, so the number is the
	// pagination overhead (cursor walk, per-page accounting, cross-page
	// dedup) on top of a single-shot fetch of the same answer. The
	// "pages/op" metric records how many round-trips each answer took.
	rel, g := workload.Cars(5000, 1)
	g.PageSize = 50
	src, err := source.NewLocal("autos", rel, g)
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	paged := source.NewPaged("autos", src, source.PagedOptions{Obs: reg})
	cond := condition.MustParse(`make = "Toyota" ^ price <= 20000`)
	attrs := []string{"make", "model", "price"}
	if res, err := paged.Query(context.Background(), cond, attrs); err != nil {
		b.Fatal(err)
	} else if res.Len() <= int(g.PageSize) {
		b.Fatalf("benchmark answer has %d rows: too small to paginate", res.Len())
	}
	pagesCounter := reg.Counter("csqp_source_pages_total", "source", "autos")
	warmup := pagesCounter.Value()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paged.Query(context.Background(), cond, attrs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	pagesPerOp := float64(pagesCounter.Value()-warmup) / float64(b.N)
	if pagesPerOp < 2 {
		b.Fatalf("pages/op = %.1f: the benchmark is not exercising the cursor loop", pagesPerOp)
	}
	b.ReportMetric(pagesPerOp, "pages/op")
}

// ---- plan-template benchmarks ----

// templateMediator registers the micro grammar for plan-only use (nil
// querier: the template benchmarks never execute plans).
func templateMediator(tb testing.TB) *mediator.Mediator {
	tb.Helper()
	med := mediator.New(cost.Model{K1: 10, K2: 1, Est: cost.FixedEstimator(25)})
	if err := med.Register("R", nil, microGrammar); err != nil {
		tb.Fatal(err)
	}
	return med
}

// templateConds builds n same-shape conditions with pairwise-distinct
// literals — the prepared-query workload: one template, n bindings.
func templateConds(n int) []condition.Node {
	out := make([]condition.Node, n)
	for i := range out {
		out[i] = condition.MustParse(fmt.Sprintf(
			`(make = "m%d" ^ price < %d) ^ (color = "c%d" _ color = "d%d")`,
			i, 40000+i, i, i))
	}
	return out
}

func BenchmarkTemplateHit(b *testing.B) {
	// Steady-state prepared-query path: every timed iteration is a
	// parameterize + template lookup + literal bind, with zero planning
	// (asserted below — the gate also catches allocation creep here).
	med := templateMediator(b)
	med.EnableCache()
	conds := templateConds(1000)
	p := core.New()
	attrs := []string{"model", "year"}
	if _, _, err := med.Plan(context.Background(), p, "R", conds[0], attrs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := med.Plan(context.Background(), p, "R", conds[i%len(conds)], attrs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := med.TemplateStats()
	if st.Misses != 1 || st.Fallbacks != 0 || st.Infeasible != 0 {
		b.Fatalf("template stats = %+v, want every timed iteration to hit", st)
	}
	b.ReportMetric(st.HitRate(), "template-hit-rate")
}

func BenchmarkParameterize(b *testing.B) {
	// Lifting constants out of an already-canonicalized condition: the
	// per-query cost the template tier adds in front of the cache lookup.
	condition.NormKey(microCond) // warm the canonical-form memo, as Plan does
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pz := condition.Parameterize(microCond); len(pz.Bindings) != 4 {
			b.Fatalf("lifted %d constants, want 4", len(pz.Bindings))
		}
	}
}

// TestTemplateSpeedup is the acceptance gate for the template tier's
// headline claim: on a prepared-query workload — 1000 same-shape queries
// with pairwise-distinct literals — binding cached templates must be at
// least 50x faster than planning every query from scratch, with at least
// 99% of the queries served from the template.
func TestTemplateSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison is not meaningful under -short")
	}
	const queries = 1000
	// Cold planning runs at several ms/query, so the cold side is timed on
	// a sample and compared per-query; the templated side runs the full
	// workload (that is also what drives the hit rate to 99.9%).
	const coldSample = queries / 5
	attrs := []string{"model", "year"}
	run := func(disableTemplates bool, n int) (time.Duration, *mediator.Mediator) {
		med := templateMediator(t)
		med.EnableCache()
		med.DisableTemplates = disableTemplates
		// Fresh condition nodes per run, so both runs pay the same
		// per-node canonicalization memos.
		conds := templateConds(n)
		p := core.New()
		start := time.Now()
		for _, c := range conds {
			if _, _, err := med.Plan(context.Background(), p, "R", c, attrs); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start), med
	}
	cold, _ := run(true, coldSample)
	warm, med := run(false, queries)
	st := med.TemplateStats()
	if rate := st.HitRate(); rate < 0.99 {
		t.Errorf("template hit rate = %.4f, want >= 0.99 (stats %+v)", rate, st)
	}
	coldPer := cold / coldSample
	warmPer := warm / queries
	speedup := float64(coldPer) / float64(warmPer)
	t.Logf("cold %v/query (%d queries), templated %v/query (%d queries): %.0fx", coldPer, coldSample, warmPer, queries, speedup)
	if speedup < 50 {
		t.Errorf("templated planning only %.1fx faster per query than cold, want >= 50x", speedup)
	}
}

func BenchmarkQAHarness(b *testing.B) {
	// End-to-end throughput of one differential check: generate a seeded
	// (condition, grammar, relation) instance, plan it with GenModular
	// and GenCompact, execute both plans and compare against the oracle.
	// The instances/sec metric tracks how much corpus the tier-1 budget
	// and the nightly fuzz window buy; the alloc gate catches planning-
	// or generator-side allocation creep on the harness hot path.
	ctx := context.Background()
	b.ReportAllocs()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		// Rotate through a fixed seed window so b.N doesn't change which
		// workload shapes are measured.
		inst := qa.Generate(int64(i%64) + 1)
		rep, err := qa.Differential(ctx, inst)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed() {
			b.Fatalf("differential failure during benchmark:\n%s", rep)
		}
	}
	if elapsed := time.Since(start).Seconds(); elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "instances/sec")
	}
}

// ---- streaming-execution benchmarks ----

// streamingUnionFixture builds the large-relation Union workload used to
// measure the streaming engine against the materialized executor: a
// five-branch Union over the 20k-row cars relation (one branch per style,
// together covering every row), filtered and projected above the Union.
// The materialized executor holds every branch relation plus the Union,
// Select and Project intermediates simultaneously; the streaming engine
// holds one chunk per live operator plus the dedup key sets.
func streamingUnionFixture(b testing.TB) (plan.Plan, plan.Sources) {
	b.Helper()
	rel, g := workload.Cars(20000, 1)
	src, err := source.NewLocal("", rel, g)
	if err != nil {
		b.Fatal(err)
	}
	styles := []string{"sedan", "coupe", "suv", "wagon", "convertible"}
	inputs := make([]plan.Plan, len(styles))
	attrs := []string{"style", "size", "make", "model", "price", "year"}
	for i, s := range styles {
		inputs[i] = plan.NewSourceQuery("autos",
			condition.MustParse(`style = "`+s+`"`), attrs)
	}
	var p plan.Plan = &plan.Union{Inputs: inputs}
	p = &plan.Select{Cond: condition.MustParse(`price <= 30000`), Input: p}
	p = &plan.Project{Attrs: []string{"make", "model", "price"}, Input: p}
	return p, plan.SourceMap{"autos": src}
}

func BenchmarkStreamingUnion(b *testing.B) {
	p, srcs := streamingUnionFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var peak int64
	for i := 0; i < b.N; i++ {
		stats := &plan.StreamStats{}
		if _, err := plan.ExecuteStream(context.Background(), p, srcs, plan.StreamOptions{Stats: stats}); err != nil {
			b.Fatal(err)
		}
		peak = stats.PeakRows()
	}
	// Peak simultaneously-buffered rows: the streaming engine's working
	// set, directly comparable to the materialized executor's
	// sum-of-all-intermediates. Deterministic for sequential execution.
	b.ReportMetric(float64(peak), "peak-rows")
}

func BenchmarkMaterializedUnion(b *testing.B) {
	p, srcs := streamingUnionFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Execute(context.Background(), p, srcs); err != nil {
			b.Fatal(err)
		}
	}
}

// profiledPairFixture builds the workload for the profiling-overhead
// pair: the same Union/Select/Project shape as streamingUnionFixture but
// over 2k rows, so one iteration is cheap enough to repeat hundreds of
// times — the within-run ns/op ratio gate needs the noise amortized away,
// not a big absolute number.
func profiledPairFixture(b testing.TB) (plan.Plan, plan.Sources) {
	b.Helper()
	rel, g := workload.Cars(2000, 1)
	src, err := source.NewLocal("", rel, g)
	if err != nil {
		b.Fatal(err)
	}
	styles := []string{"sedan", "coupe", "suv", "wagon", "convertible"}
	inputs := make([]plan.Plan, len(styles))
	attrs := []string{"style", "size", "make", "model", "price", "year"}
	for i, s := range styles {
		inputs[i] = plan.NewSourceQuery("autos",
			condition.MustParse(`style = "`+s+`"`), attrs)
	}
	var p plan.Plan = &plan.Union{Inputs: inputs}
	p = &plan.Select{Cond: condition.MustParse(`price <= 30000`), Input: p}
	p = &plan.Project{Attrs: []string{"make", "model", "price"}, Input: p}
	return p, plan.SourceMap{"autos": src}
}

// BenchmarkExecUnprofiled and BenchmarkExecProfiled run the identical
// streaming Union plan with per-operator profiling off and on. Their
// allocation numbers land in BENCH_plan.json where the benchgate compare
// gate keeps the profiler's allocation footprint honest (+~46 allocs for
// the whole OpStats tree today); the ns overhead itself is gated by the
// interleaved BenchmarkExecProfilingOverhead below, and the disabled
// path's zero-allocation contract is pinned separately by
// TestOpStatsDisabledPathAllocs.
func BenchmarkExecUnprofiled(b *testing.B) {
	p, srcs := profiledPairFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.ExecuteStream(context.Background(), p, srcs, plan.StreamOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecProfiled(b *testing.B) {
	p, srcs := profiledPairFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof := plan.NewProfile()
		if _, err := plan.ExecuteStream(context.Background(), p, srcs, plan.StreamOptions{Profile: prof}); err != nil {
			b.Fatal(err)
		}
		if prof.Snapshot().RowsOut == 0 {
			b.Fatal("profile recorded no output rows")
		}
	}
}

// BenchmarkExecProfilingOverhead measures the profiled/unprofiled ns
// ratio directly: each iteration runs BOTH paths back to back and
// accumulates their times separately, so machine-level drift (noisy
// neighbours, frequency scaling, GC pauses) hits both sides equally and
// cancels out of the ratio. The "ns-ratio" metric is what CI's benchgate
// -pair gate holds under the <=5% overhead budget — unlike comparing two
// separately-run benchmarks, the interleaved ratio is stable enough to
// gate tightly.
func BenchmarkExecProfilingOverhead(b *testing.B) {
	p, srcs := profiledPairFixture(b)
	var unprofiled, profiled time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := plan.ExecuteStream(context.Background(), p, srcs, plan.StreamOptions{}); err != nil {
			b.Fatal(err)
		}
		unprofiled += time.Since(start)

		prof := plan.NewProfile()
		start = time.Now()
		if _, err := plan.ExecuteStream(context.Background(), p, srcs, plan.StreamOptions{Profile: prof}); err != nil {
			b.Fatal(err)
		}
		profiled += time.Since(start)
		if prof.Snapshot().RowsOut == 0 {
			b.Fatal("profile recorded no output rows")
		}
	}
	if unprofiled > 0 {
		b.ReportMetric(float64(profiled)/float64(unprofiled), "ns-ratio")
	}
}

// streamingJoinSystem registers a small dealer relation and the 20k-row
// cars relation (value-list capable, so the semijoin pushdown batches the
// bindings) on a mediator pinned to the given engine.
func streamingJoinSystem(b *testing.B, mode mediator.StreamingMode) *mediator.Mediator {
	b.Helper()
	cars, _ := workload.Cars(20000, 1)
	carsG := ssdl.MustParse(`
source cars
attrs style, size, make, model, price, year
key model
mlist -> make = $m:string _ mlist | make = $m:string _ make = $m:string
s1 -> make = $m:string
s2 -> mlist
attributes :: s1 : {style, size, make, model, price, year}
attributes :: s2 : {style, size, make, model, price, year}
`)
	dealers := relation.New(relation.MustSchema(
		relation.Column{Name: "dealer", Kind: condition.KindString},
		relation.Column{Name: "make", Kind: condition.KindString},
	))
	for i, mk := range []string{"Toyota", "BMW", "Honda", "Ford"} {
		for j := 0; j < 4; j++ {
			if err := dealers.AppendValues(
				condition.String(fmt.Sprintf("dealer-%d-%d", i, j)),
				condition.String(mk),
			); err != nil {
				b.Fatal(err)
			}
		}
	}
	dealersG := ssdl.MustParse(`
source dealers
attrs dealer, make
key dealer
dl -> true
attributes :: dl : {dealer, make}
`)
	med := mediator.New(cost.Model{K1: 10, K2: 1, Est: cost.FixedEstimator(100)})
	med.Streaming = mode
	carsSrc, err := source.NewLocal("cars", cars, carsG)
	if err != nil {
		b.Fatal(err)
	}
	dealersSrc, err := source.NewLocal("dealers", dealers, dealersG)
	if err != nil {
		b.Fatal(err)
	}
	if err := med.Register("cars", carsSrc, carsG); err != nil {
		b.Fatal(err)
	}
	if err := med.Register("dealers", dealersSrc, dealersG); err != nil {
		b.Fatal(err)
	}
	return med
}

var streamingJoinSpec = mediator.JoinSpec{
	Left:      "dealers",
	Right:     "cars",
	LeftCond:  condition.True(),
	RightCond: condition.True(),
	LeftAttr:  "make",
	RightAttr: "make",
	Attrs:     []string{"dealer", "make", "model", "price"},
}

func BenchmarkSymmetricHashJoin(b *testing.B) {
	med := streamingJoinSystem(b, mediator.StreamingOn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := med.AnswerJoin(context.Background(), core.New(), streamingJoinSpec)
		if err != nil {
			b.Fatal(err)
		}
		if res.Relation.Len() == 0 {
			b.Fatal("empty join answer")
		}
	}
}

func BenchmarkMaterializedJoin(b *testing.B) {
	med := streamingJoinSystem(b, mediator.StreamingOff)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := med.AnswerJoin(context.Background(), core.New(), streamingJoinSpec)
		if err != nil {
			b.Fatal(err)
		}
		if res.Relation.Len() == 0 {
			b.Fatal("empty join answer")
		}
	}
}

// TestStreamingMemoryWin is the acceptance gate for the streaming engine's
// headline claim: on the large-relation Union workload, streaming
// execution must allocate at least 40% fewer bytes than the materialized
// executor.
func TestStreamingMemoryWin(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not meaningful under -short")
	}
	p, srcs := streamingUnionFixture(t)
	const iters = 5
	measure := func(run func() error) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < iters; i++ {
			if err := run(); err != nil {
				t.Fatal(err)
			}
		}
		runtime.ReadMemStats(&after)
		return (after.TotalAlloc - before.TotalAlloc) / iters
	}
	materialized := measure(func() error {
		_, err := plan.Execute(context.Background(), p, srcs)
		return err
	})
	streaming := measure(func() error {
		_, err := plan.ExecuteStream(context.Background(), p, srcs, plan.StreamOptions{})
		return err
	})
	t.Logf("bytes per execution: materialized %d, streaming %d (%.1f%% reduction)",
		materialized, streaming, 100*(1-float64(streaming)/float64(materialized)))
	if float64(streaming) > 0.6*float64(materialized) {
		t.Errorf("streaming allocated %d B/exec vs materialized %d B/exec: less than the required 40%% reduction",
			streaming, materialized)
	}
}

func BenchmarkE9Joins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E9Joins(1); err != nil {
			b.Fatal(err)
		}
	}
}
