// Benchmarks: one target per experiment table (E1-E9, DESIGN.md §4) plus
// micro-benchmarks of the core operations (Check, IPG, EPG,
// canonicalization, closure, fixing, plan execution). Run with
//
//	go test -bench=. -benchmem
package csqp_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/condition"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/genmodular"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/qa"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/source"
	"repro/internal/ssdl"
	"repro/internal/strset"
	"repro/internal/workload"
)

// ---- experiment benchmarks (one per table) ----

func BenchmarkE1Bookstore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.E1Bookstore(20000, 1)
		if err != nil {
			b.Fatal(err)
		}
		reportScenario(b, tab)
	}
}

func BenchmarkE2CarSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := bench.E2CarSearch(5000, 1)
		if err != nil {
			b.Fatal(err)
		}
		reportScenario(b, tab)
	}
}

func BenchmarkE3PlanQuality(b *testing.B) {
	cfg := bench.QualityConfig{Seed: 1, Queries: 5, AtomCounts: []int{3, 5}, Rows: 500}
	for i := 0; i < b.N; i++ {
		if _, err := bench.E3PlanQuality(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4PlanningCost(b *testing.B) {
	cfg := bench.CostConfig{Seed: 2, Queries: 3, Sizes: []int{3, 5}}
	for i := 0; i < b.N; i++ {
		if _, err := bench.E4PlanningCost(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5PruningAblation(b *testing.B) {
	cfg := bench.CostConfig{Seed: 3, Queries: 3, Sizes: []int{3, 5}}
	for i := 0; i < b.N; i++ {
		if _, err := bench.E5PruningAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6Feasibility(b *testing.B) {
	cfg := bench.QualityConfig{Seed: 4, Queries: 5, AtomCounts: []int{3, 5}, Rows: 300}
	for i := 0; i < b.N; i++ {
		if _, err := bench.E6Feasibility(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7CheckLinear(b *testing.B) {
	cfg := bench.CheckConfig{Sizes: []int{8, 64, 256}, Repeats: 3}
	for i := 0; i < b.N; i++ {
		if _, err := bench.E7CheckLinear(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8Crossover(b *testing.B) {
	cfg := bench.CrossoverConfig{Size: 5000, K1Values: []float64{0, 10, 1000}}
	for i := 0; i < b.N; i++ {
		if _, err := bench.E8Crossover(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func reportScenario(b *testing.B, tab *bench.Table) {
	b.Helper()
	if len(tab.Rows) == 0 || tab.Rows[0][1] != "yes" {
		b.Fatalf("GenCompact infeasible in %s", tab.ID)
	}
}

// ---- micro-benchmarks ----

var microGrammar = ssdl.MustParse(`
source R
attrs make, model, year, color, price
key model
s1 -> make = $m:string ^ price < $p:int
s2 -> make = $m:string ^ color = $c:string
attributes :: s1 : {make, model, year, color}
attributes :: s2 : {make, model, year}
`)

func microContext(b *testing.B) *planner.Context {
	b.Helper()
	return &planner.Context{
		Source:  "R",
		Checker: ssdl.NewChecker(ssdl.CommutativeClosure(microGrammar, 0)),
		Model:   cost.Model{K1: 10, K2: 1, Est: cost.FixedEstimator(25)},
	}
}

var microCond = condition.MustParse(`(make = "BMW" ^ price < 40000) ^ (color = "red" _ color = "black")`)

func BenchmarkCheckSupported(b *testing.B) {
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh checker each time: measure parsing, not the memo.
		c := ssdl.NewChecker(microGrammar)
		if c.Check(cond).Empty() {
			b.Fatal("should be supported")
		}
	}
}

func BenchmarkCheckMemoized(b *testing.B) {
	c := ssdl.NewChecker(microGrammar)
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	c.Check(cond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Check(cond)
	}
}

func BenchmarkCheckMemoizedParallel(b *testing.B) {
	c := ssdl.NewChecker(microGrammar)
	cond := condition.MustParse(`make = "BMW" ^ price < 40000`)
	c.Check(cond)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if c.Check(cond).Empty() {
				b.Fatal("should be supported")
			}
		}
	})
}

func BenchmarkNormKey(b *testing.B) {
	// Once the canonical form and key are cached, NormKey is two pointer
	// loads; the first call pays for everything.
	condition.NormKey(microCond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		condition.NormKey(microCond)
	}
}

func BenchmarkCheckLongChain(b *testing.B) {
	g := ssdl.MustParse(`
source chain
attrs a
chain -> a = $v:int | a = $v:int ^ chain
attributes :: chain : {a}
`)
	kids := make([]condition.Node, 128)
	for i := range kids {
		kids[i] = condition.NewAtomic("a", condition.OpEq, condition.Int(int64(i)))
	}
	cond := &condition.And{Kids: kids}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := ssdl.NewChecker(g)
		if c.Check(cond).Empty() {
			b.Fatal("chain should be supported")
		}
	}
}

func BenchmarkIPGSection4(b *testing.B) {
	// context.Background() carries no tracer, so this doubles as the
	// disabled-telemetry regression gate: allocs/op must not grow when the
	// span machinery is off (benchgate compares against the baseline).
	ctx := microContext(b)
	gc := core.New()
	b.ReportAllocs()
	var calls, misses int64
	for i := 0; i < b.N; i++ {
		_, m, err := gc.Plan(context.Background(), ctx, microCond, []string{"model", "year"})
		if err != nil {
			b.Fatal(err)
		}
		calls += int64(m.CheckCalls)
		misses += int64(m.CheckMisses)
	}
	reportCheckHitRate(b, calls, misses)
}

func BenchmarkIPGSection4Traced(b *testing.B) {
	// The traced twin of BenchmarkIPGSection4: the delta between the two
	// is the whole cost of span recording.
	pc := microContext(b)
	gc := core.New()
	tr := obs.NewTracer(0)
	ctx := obs.WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Reset()
		if _, _, err := gc.Plan(ctx, pc, microCond, []string{"model", "year"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEPGSection4(b *testing.B) {
	ctx := microContext(b)
	gm := &genmodular.Planner{Rewrite: rewrite.Config{Rules: rewrite.AllRules, MaxCTs: 500, MaxAtoms: 8}}
	b.ReportAllocs()
	var calls, misses int64
	for i := 0; i < b.N; i++ {
		_, m, err := gm.Plan(context.Background(), ctx, microCond, []string{"model", "year"})
		if err != nil {
			b.Fatal(err)
		}
		calls += int64(m.CheckCalls)
		misses += int64(m.CheckMisses)
	}
	reportCheckHitRate(b, calls, misses)
}

// reportCheckHitRate attaches the checker-memo hit rate to the benchmark
// output, so BENCH_*.json carries effectiveness context next to ns/op.
func reportCheckHitRate(b *testing.B, calls, misses int64) {
	b.Helper()
	if calls > 0 {
		b.ReportMetric(float64(calls-misses)/float64(calls), "check-hit-rate")
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	// The no-op fast path: Start against a tracer-less context must stay
	// allocation-free — untraced queries pay nothing for the telemetry
	// layer.
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := obs.Start(ctx, "bench.span")
		sp.SetAttr("k", "v")
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := obs.NewTracer(0)
	ctx := obs.WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			tr.Reset() // stay under the span buffer bound
		}
		c, sp := obs.Start(ctx, "bench.span")
		sp.SetAttr("k", "v")
		sp.End()
		_ = c
	}
}

func BenchmarkCanonicalize(b *testing.B) {
	n := condition.MustParse(`a = 1 ^ (b = 2 ^ (c = 3 ^ (d = 4 _ (e = 5 _ f = 6))))`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		condition.Canonicalize(n)
	}
}

func BenchmarkDistributiveClosure(b *testing.B) {
	n := condition.MustParse(workload.Example12Condition)
	cfg := rewrite.Config{Rules: rewrite.DistributiveOnly, MaxCTs: 128, MaxAtoms: 24}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rewrite.Closure(n, cfg)
	}
}

func BenchmarkCommutativeClosure(b *testing.B) {
	g := ssdl.MustParse(workload.CarsGrammar)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ssdl.CommutativeClosure(g, 0)
	}
}

func BenchmarkFixReorder(b *testing.B) {
	orig := ssdl.NewChecker(microGrammar)
	cond := condition.MustParse(`color = "red" ^ make = "BMW"`)
	attrs := strset.New("model", "year")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := ssdl.Fix(orig, cond, attrs, 0); !ok {
			b.Fatal("fix failed")
		}
	}
}

func BenchmarkPlanExecution(b *testing.B) {
	rel, g := workload.Cars(5000, 1)
	src, err := source.NewLocal("", rel, g)
	if err != nil {
		b.Fatal(err)
	}
	p := &plan.Union{Inputs: []plan.Plan{
		plan.NewSourceQuery("autos", condition.MustParse(`style = "sedan" ^ make = "Toyota" ^ price <= 20000 ^ (size = "compact" _ size = "midsize")`), []string{"make", "model", "price"}),
		plan.NewSourceQuery("autos", condition.MustParse(`style = "sedan" ^ make = "BMW" ^ price <= 40000 ^ (size = "compact" _ size = "midsize")`), []string{"make", "model", "price"}),
	}}
	srcs := plan.SourceMap{"autos": src}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Execute(context.Background(), p, srcs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectScan(b *testing.B) {
	rel, _ := workload.Cars(20000, 1)
	cond := condition.MustParse(`make = "Toyota" ^ price <= 20000`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rel.Count(cond); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOracleEstimator(b *testing.B) {
	rel, _ := workload.Cars(20000, 1)
	est := cost.NewOracleEstimator(map[string]*relation.Relation{"autos": rel})
	cond := condition.MustParse(`make = "Toyota" ^ price <= 20000`)
	est.ResultSize("autos", cond) // warm the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.ResultSize("autos", cond)
	}
}

// benchCountingQuerier counts upstream calls so the hit benchmark can
// prove the cache never touched the source.
type benchCountingQuerier struct {
	inner plan.Querier
	calls atomic.Int64
}

func (q *benchCountingQuerier) Query(ctx context.Context, cond condition.Node, attrs []string) (*relation.Relation, error) {
	q.calls.Add(1)
	return q.inner.Query(ctx, cond, attrs)
}

func BenchmarkSourceCacheHit(b *testing.B) {
	// Steady-state hit path: every iteration after warm-up is a lookup +
	// clone, with zero upstream queries (asserted below — the gate also
	// catches allocation creep on this path).
	rel, g := workload.Cars(5000, 1)
	src, err := source.NewLocal("autos", rel, g)
	if err != nil {
		b.Fatal(err)
	}
	counted := &benchCountingQuerier{inner: src}
	cached := source.NewCached("autos", counted, source.CacheOptions{
		MaxEntries: 16,
		TTL:        time.Hour,
	})
	cond := condition.MustParse(`make = "Toyota" ^ price <= 20000`)
	attrs := []string{"make", "model", "price"}
	if _, err := cached.Query(context.Background(), cond, attrs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cached.Query(context.Background(), cond, attrs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := counted.calls.Load(); got != 1 {
		b.Fatalf("upstream queries = %d, want exactly 1 (the warm-up miss)", got)
	}
	if st := cached.Stats(); st.Hits != b.N {
		b.Fatalf("cache hits = %d, want %d", st.Hits, b.N)
	}
}

func BenchmarkQAHarness(b *testing.B) {
	// End-to-end throughput of one differential check: generate a seeded
	// (condition, grammar, relation) instance, plan it with GenModular
	// and GenCompact, execute both plans and compare against the oracle.
	// The instances/sec metric tracks how much corpus the tier-1 budget
	// and the nightly fuzz window buy; the alloc gate catches planning-
	// or generator-side allocation creep on the harness hot path.
	ctx := context.Background()
	b.ReportAllocs()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		// Rotate through a fixed seed window so b.N doesn't change which
		// workload shapes are measured.
		inst := qa.Generate(int64(i%64) + 1)
		rep, err := qa.Differential(ctx, inst)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed() {
			b.Fatalf("differential failure during benchmark:\n%s", rep)
		}
	}
	if elapsed := time.Since(start).Seconds(); elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "instances/sec")
	}
}

func BenchmarkE9Joins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E9Joins(1); err != nil {
			b.Fatal(err)
		}
	}
}
