package csqp_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	csqp "repro"
	"repro/internal/condition"
	"repro/internal/relation"
	"repro/internal/source"
	"repro/internal/ssdl"
)

func partitionSSDL(name string) string {
	return fmt.Sprintf(`
source %s
attrs make, model
key model
s1 -> make = $m:string
attributes :: s1 : {make, model}
`, name)
}

func partitionRelation(t *testing.T, models ...string) *relation.Relation {
	t.Helper()
	r := relation.New(relation.MustSchema(
		relation.Column{Name: "make", Kind: condition.KindString},
		relation.Column{Name: "model", Kind: condition.KindString},
	))
	for _, m := range models {
		if err := r.AppendValues(condition.String("BMW"), condition.String(m)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// deadPartitionSystem registers three partitions, the middle one dead.
func deadPartitionSystem(t *testing.T, opts csqp.Options) *csqp.System {
	t.Helper()
	sys := csqp.NewSystem(opts)
	if err := sys.AddSource(partitionRelation(t, "328i"), partitionSSDL("p1")); err != nil {
		t.Fatal(err)
	}
	p2, err := source.NewLocal("", partitionRelation(t, "M5"), ssdl.MustParse(partitionSSDL("p2")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddQuerierSource(source.NewFlaky(p2).FailFirst(1<<20), partitionSSDL("p2")); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddSource(partitionRelation(t, "318i"), partitionSSDL("p3")); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemPartialUnionAnswer(t *testing.T) {
	sys := deadPartitionSystem(t, csqp.Options{PartialAnswers: true, Workers: 4})
	res, err := sys.QueryUnion([]string{"p1", "p2", "p3"}, `make = "BMW"`, "model")
	if res == nil {
		t.Fatalf("want partial answer, got err = %v", err)
	}
	var pe *csqp.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *csqp.PartialError", err)
	}
	if got := pe.DroppedSources(); len(got) != 1 || got[0] != "p2" {
		t.Errorf("DroppedSources = %v, want [p2]", got)
	}
	if res.Answer.Len() != 2 {
		t.Errorf("rows = %d, want 2 (the surviving partitions)", res.Answer.Len())
	}
}

func TestSystemUnionFailsClosedWithoutPartialAnswers(t *testing.T) {
	sys := deadPartitionSystem(t, csqp.Options{Workers: 4})
	res, err := sys.QueryUnion([]string{"p1", "p2", "p3"}, `make = "BMW"`, "model")
	if err == nil || res != nil {
		t.Fatalf("want hard failure, got res=%v err=%v", res, err)
	}
	if !errors.Is(err, source.ErrInjected) {
		t.Errorf("err = %v, want the dead partition's transport error", err)
	}
}

func TestSystemRetriesRecoverFlakySource(t *testing.T) {
	sys := csqp.NewSystem(csqp.Options{QueryRetries: 3})
	local, err := source.NewLocal("", partitionRelation(t, "M3"), ssdl.MustParse(partitionSSDL("shaky")))
	if err != nil {
		t.Fatal(err)
	}
	flaky := source.NewFlaky(local).FailFirst(2)
	if _, err := sys.AddQuerierSource(flaky, partitionSSDL("shaky")); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("shaky", `make = "BMW"`, "model")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Answer.Len() != 1 {
		t.Errorf("rows = %d, want 1", res.Answer.Len())
	}
	if flaky.Calls() != 3 {
		t.Errorf("source calls = %d, want 3 (two failures retried)", flaky.Calls())
	}
}

func TestSystemQueryTimeoutBoundsHungSource(t *testing.T) {
	sys := csqp.NewSystem(csqp.Options{QueryTimeout: 20 * time.Millisecond})
	local, err := source.NewLocal("", partitionRelation(t, "M3"), ssdl.MustParse(partitionSSDL("hung")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddQuerierSource(source.NewFlaky(local).Latency(10*time.Second), partitionSSDL("hung")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = sys.Query("hung", `make = "BMW"`, "model")
	if err == nil {
		t.Fatal("want timeout error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("query took %v — per-attempt timeout not applied", elapsed)
	}
}
