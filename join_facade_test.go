package csqp

import (
	"testing"

	"repro/internal/condition"
)

func joinSystem(t *testing.T) *System {
	t.Helper()
	sys := NewSystem()

	dealerSchema, err := NewSchema(
		Column{Name: "dealer", Kind: condition.KindString},
		Column{Name: "city", Kind: condition.KindString},
		Column{Name: "brand", Kind: condition.KindString},
	)
	if err != nil {
		t.Fatal(err)
	}
	dealers := NewRelation(dealerSchema)
	for _, row := range [][3]string{
		{"D1", "Palo Alto", "BMW"},
		{"D2", "Palo Alto", "Toyota"},
		{"D3", "San Jose", "BMW"},
	} {
		if err := dealers.AppendValues(String(row[0]), String(row[1]), String(row[2])); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.AddSource(dealers, `
source dealers
attrs dealer, city, brand
key dealer
s1 -> city = $c:string
attributes :: s1 : {dealer, city, brand}
`); err != nil {
		t.Fatal(err)
	}

	carSchema, err := NewSchema(
		Column{Name: "make", Kind: condition.KindString},
		Column{Name: "model", Kind: condition.KindString},
		Column{Name: "price", Kind: condition.KindInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	cars := NewRelation(carSchema)
	for _, row := range []struct {
		mk, model string
		price     int64
	}{
		{"BMW", "328i", 35000},
		{"BMW", "M5", 70000},
		{"Toyota", "Camry", 19000},
	} {
		if err := cars.AppendValues(String(row.mk), String(row.model), Int(row.price)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.AddSource(cars, `
source cars
attrs make, model, price
key model
s1 -> make = $m:string
s2 -> make = $m:string ^ price < $p:int
attributes :: s1 : {make, model, price}
attributes :: s2 : {make, model, price}
`); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestQueryJoinFacade(t *testing.T) {
	sys := joinSystem(t)
	res, err := sys.QueryJoin(Join{
		Left:      "dealers",
		Right:     "cars",
		LeftCond:  `city = "Palo Alto"`,
		RightCond: `price < 40000`,
		LeftAttr:  "brand",
		RightAttr: "make",
		Attrs:     []string{"dealer", "model", "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Len() != 2 { // D1-328i, D2-Camry
		t.Errorf("rows = %d, want 2", res.Answer.Len())
	}
	if res.Strategy != "semijoin" || res.Probes != 2 {
		t.Errorf("strategy=%s probes=%d", res.Strategy, res.Probes)
	}
}

func TestQueryJoinEmptyCondIsTrue(t *testing.T) {
	sys := joinSystem(t)
	// Empty right condition means `true`; probes are make = v atoms.
	res, err := sys.QueryJoin(Join{
		Left:      "dealers",
		Right:     "cars",
		LeftCond:  `city = "San Jose"`,
		LeftAttr:  "brand",
		RightAttr: "make",
		Attrs:     []string{"dealer", "model"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Len() != 2 { // D3 × {328i, M5}
		t.Errorf("rows = %d, want 2", res.Answer.Len())
	}
}

func TestQueryJoinBadCondition(t *testing.T) {
	sys := joinSystem(t)
	if _, err := sys.QueryJoin(Join{Left: "dealers", Right: "cars", LeftCond: `bad =`}); err == nil {
		t.Error("bad condition should fail")
	}
}
